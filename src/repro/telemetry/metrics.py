"""Process-global metrics: counters, gauges, and histogram timers.

The registry is a flat namespace of dotted metric names (see
``docs/OBSERVABILITY.md`` for the taxonomy used across the package):

* :class:`Counter` — monotonically increasing event counts
  (``solver.settles``, ``analyzer.cache_hits``);
* :class:`Gauge` — last-written values (``analyzer.cache_size``);
* :class:`Histogram` — streaming summaries (count/sum/min/max/mean) of
  observed samples, used both for sizes (``solver.nodes``) and for wall
  times (``experiment.seconds``).

Instruments are created lazily on first use and live for the process
lifetime; :meth:`MetricsRegistry.reset` zeroes them between runs.  All
mutation goes through plain attribute arithmetic, so recording a sample
costs an attribute lookup and an add — cheap enough for the solver's
inner loop once the module-level enable flag (checked by the helpers in
:mod:`repro.telemetry`) has let the call through.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A streaming summary of observed samples (no bucket storage)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def merge_summary(self, summary: Dict[str, Optional[float]]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one."""
        count = int(summary.get("count") or 0)
        if not count:
            return
        self.count += count
        self.total += float(summary.get("sum") or 0.0)
        lo, hi = summary.get("min"), summary.get("max")
        if lo is not None and lo < self.min:
            self.min = lo
        if hi is not None and hi > self.max:
            self.max = hi

    def snapshot(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A process-global, name-indexed collection of instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (create on first use) -------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(name, Histogram(name))
        return inst

    # -- read side -------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 if it never fired)."""
        inst = self._counters.get(name)
        return inst.value if inst is not None else 0

    def gauge_value(self, name: str) -> Optional[float]:
        inst = self._gauges.get(name)
        return inst.value if inst is not None else None

    def is_empty(self) -> bool:
        """True when no instrument has ever been touched."""
        return not (self._counters or self._gauges or self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable dump of every instrument."""
        return {
            "counters": {n: c.snapshot() for n, c in self._counters.items()},
            "gauges": {n: g.snapshot() for n, g in self._gauges.items()},
            "histograms": {
                n: h.snapshot() for n, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snap: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker process) in.

        Counters and histogram summaries add; gauges are last-write-wins,
        so the merged-in worker's value overwrites the local one (the
        callers merge snapshots in deterministic submission order).
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in snap.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)

    def reset(self) -> None:
        """Drop every instrument (names are re-created on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
