"""Deterministic profiling hooks (stdlib ``cProfile`` only).

The CLI's ``--profile`` flag and ad-hoc scripts use :func:`profiled` to
wrap a region of work and get a formatted hot-spot table back without
touching files::

    with profiled() as prof:
        run_table1()
    print(prof.report())

Profiling is orthogonal to the metrics/tracing enable flag: it has real
overhead, so it only ever runs when explicitly requested.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Iterator

from contextlib import contextmanager

__all__ = ["ProfileSession", "profiled"]


class ProfileSession:
    """A finished (or running) cProfile capture with a report formatter."""

    def __init__(self) -> None:
        self.profile = cProfile.Profile()

    def report(self, sort: str = "cumulative", limit: int = 25) -> str:
        """Top-``limit`` functions formatted as a plain-text table."""
        buf = io.StringIO()
        stats = pstats.Stats(self.profile, stream=buf)
        stats.strip_dirs().sort_stats(sort).print_stats(limit)
        return buf.getvalue().rstrip()


@contextmanager
def profiled() -> Iterator[ProfileSession]:
    """Profile the enclosed block; yields the :class:`ProfileSession`."""
    session = ProfileSession()
    session.profile.enable()
    try:
        yield session
    finally:
        session.profile.disable()
