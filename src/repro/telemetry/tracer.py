"""Span-based tracing with JSONL export.

A *span* is one named, timed region of work, optionally annotated with
attributes.  Spans nest: opening a span inside another records the outer
one as its parent, so a trace of ``experiment.fig3`` contains the
``analyzer.survey`` spans it ran, which in turn may contain per-plan
sweeps.  The tracer keeps every *finished* span; :meth:`Tracer.export_jsonl`
writes them as one JSON object per line (start-ordered), the format
documented in ``docs/OBSERVABILITY.md``::

    {"span": 1, "parent": null, "depth": 0, "name": "experiment.fig3",
     "start": 0.0, "duration": 12.3, "attrs": {"claims": 4}}

``start`` is seconds since the tracer's epoch (its creation or last
:meth:`Tracer.reset`), ``duration`` is wall seconds measured with
``time.perf_counter``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region; use :meth:`set` to attach attributes mid-flight."""

    __slots__ = (
        "span_id", "parent_id", "depth", "name", "attrs", "start", "duration",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        name: str,
        attrs: Dict[str, Any],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration: Optional[float] = None

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
            # The body is already unwinding: a broken span finalization
            # (e.g. a corrupted tracer stack) must not replace the
            # in-flight exception with its own.
            try:
                self._tracer._finish(self._span)
            except Exception:
                pass
            return
        self._tracer._finish(self._span)


class Tracer:
    """Records nested spans and exports them as JSONL."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack: List[Span] = []
        self._finished: List[Span] = []

    # -- recording -------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span; use as ``with tracer.span("name", key=val) as sp:``."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            name=name,
            attrs=dict(attrs),
            start=time.perf_counter() - self._epoch,
        )
        self._next_id += 1
        self._stack.append(sp)
        return _SpanContext(self, sp)

    def _finish(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._epoch) - span.start
        # Close any dangling children first (defensive: a span leaked by a
        # generator that never resumed must not corrupt the stack).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.duration is None:
                dangling.duration = (
                    time.perf_counter() - self._epoch
                ) - dangling.start
                self._finished.append(dangling)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self._finished.append(span)

    # -- read side -------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in start order."""
        return sorted(self._finished, key=lambda s: (s.start, s.span_id))

    def spans_named(self, prefix: str) -> List[Span]:
        """Finished spans whose name equals or starts with ``prefix.``."""
        return [
            s for s in self.spans
            if s.name == prefix or s.name.startswith(prefix + ".")
        ]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; return the span count."""
        spans = self.spans
        with open(path, "w", encoding="utf-8") as fh:
            for sp in spans:
                fh.write(json.dumps(sp.to_dict(), sort_keys=True))
                fh.write("\n")
        return len(spans)

    def reset(self) -> None:
        """Drop all spans and restart the epoch."""
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack.clear()
        self._finished.clear()
