"""Span-based tracing with JSONL export and cross-process propagation.

A *span* is one named, timed region of work, optionally annotated with
attributes.  Spans nest: opening a span inside another records the outer
one as its parent, so a trace of ``experiment.fig3`` contains the
``analyzer.survey`` spans it ran, which in turn may contain per-plan
sweeps.  The tracer keeps every *finished* span; :meth:`Tracer.export_jsonl`
writes them as one JSON object per line (start-ordered), the format
documented in ``docs/OBSERVABILITY.md``::

    {"trace": "9f2c51aa03be47d1", "span": 1, "parent": null, "depth": 0,
     "name": "experiment.fig3", "start": 0.0, "duration": 12.3,
     "attrs": {"claims": 4}}

``start`` is seconds since the tracer's epoch (its creation or last
:meth:`Tracer.reset`), ``duration`` is wall seconds measured with
``time.perf_counter``.

Concurrency and propagation (new in the observability layer):

* Every tracer owns a ``trace_id`` (regenerated on :meth:`Tracer.reset`)
  stamped onto each span, and each *thread* gets its own open-span
  stack — the sweep service's scheduler workers record concurrent
  ``service.job`` trees without corrupting one another.
* :meth:`Tracer.export_state` packages the finished spans (plus the
  tracer's wall-clock epoch) for shipping across a process boundary;
  :meth:`Tracer.adopt_state` folds such a package back in, renumbering
  span ids, re-basing start times onto the local epoch, and re-parenting
  the remote roots under a :class:`~repro.telemetry.context.TraceContext`
  captured on the submitting side.  ``repro.parallel`` uses the pair to
  return worker-process spans with the existing telemetry-snapshot
  merge, so a ``--jobs N`` trace still forms one connected tree.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from repro.telemetry.context import TraceContext, new_trace_id

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region; use :meth:`set` to attach attributes mid-flight."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "depth", "name", "attrs",
        "start", "duration",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        name: str,
        attrs: Dict[str, Any],
        start: float,
        trace_id: str = "",
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration: Optional[float] = None

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
            # The body is already unwinding: a broken span finalization
            # (e.g. a corrupted tracer stack) must not replace the
            # in-flight exception with its own.
            try:
                self._tracer._finish(self._span)
            except Exception:
                pass
            return
        self._tracer._finish(self._span)


class Tracer:
    """Records nested spans (per-thread stacks) and exports them as JSONL."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._epoch_wall = time.time()
        self.trace_id = new_trace_id()
        self._next_id = 1
        self._local = threading.local()
        self._finished: List[Span] = []
        self._lock = threading.Lock()
        self._exported_ids: set = set()

    def _thread_stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording -------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span; use as ``with tracer.span("name", key=val) as sp:``."""
        stack = self._thread_stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        sp = Span(
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(stack),
            name=name,
            attrs=dict(attrs),
            start=time.perf_counter() - self._epoch,
            trace_id=self.trace_id,
        )
        stack.append(sp)
        return _SpanContext(self, sp)

    def _finish(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._epoch) - span.start
        stack = self._thread_stack()
        # Close any dangling children first (defensive: a span leaked by a
        # generator that never resumed must not corrupt the stack).
        closed: List[Span] = []
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            if dangling.duration is None:
                dangling.duration = (
                    time.perf_counter() - self._epoch
                ) - dangling.start
                closed.append(dangling)
        if stack and stack[-1] is span:
            stack.pop()
        closed.append(span)
        with self._lock:
            self._finished.extend(closed)

    # -- propagation -----------------------------------------------------------

    def current_context(self) -> TraceContext:
        """The calling thread's position in the trace, for propagation."""
        stack = self._thread_stack()
        if stack:
            top = stack[-1]
            return TraceContext(
                trace_id=self.trace_id,
                span_id=top.span_id,
                depth=top.depth,
            )
        return TraceContext(trace_id=self.trace_id)

    def export_state(self) -> Dict[str, Any]:
        """Package finished spans for shipping across a process boundary.

        ``epoch_wall`` lets the receiving tracer re-base relative start
        times: ``perf_counter`` epochs are process-local and meaningless
        on the other side, wall clocks are comparable.
        """
        with self._lock:
            spans = list(self._finished)
        spans.sort(key=lambda s: (s.start, s.span_id))
        return {
            "trace": self.trace_id,
            "epoch_wall": self._epoch_wall,
            "spans": [sp.to_dict() for sp in spans],
        }

    def adopt_state(
        self,
        state: Optional[Dict[str, Any]],
        parent: Optional[TraceContext] = None,
    ) -> int:
        """Fold an :meth:`export_state` package into this tracer.

        Remote spans get fresh local ids, start times re-based via the
        wall-clock epochs, this tracer's ``trace_id``, and their roots
        re-parented under ``parent`` (when it names an open span) — so
        the exported JSONL stays one connected tree.  Returns the number
        of spans adopted.
        """
        if not state:
            return 0
        remote = state.get("spans") or []
        if not remote:
            return 0
        offset = float(state.get("epoch_wall") or self._epoch_wall)
        offset -= self._epoch_wall
        base_depth = 0
        parent_id = None
        if parent is not None and parent.span_id is not None:
            parent_id = parent.span_id
            base_depth = parent.depth + 1
        id_map: Dict[int, int] = {}
        adopted: List[Span] = []
        with self._lock:
            for rec in remote:
                new_id = self._next_id
                self._next_id += 1
                id_map[int(rec["span"])] = new_id
            for rec in remote:
                old_parent = rec.get("parent")
                if old_parent is not None and int(old_parent) in id_map:
                    new_parent: Optional[int] = id_map[int(old_parent)]
                    depth = base_depth + int(rec.get("depth") or 0)
                else:
                    new_parent = parent_id
                    depth = base_depth
                attrs = dict(rec.get("attrs") or {})
                attrs.setdefault("remote", True)
                sp = Span(
                    span_id=id_map[int(rec["span"])],
                    parent_id=new_parent,
                    depth=depth,
                    name=str(rec.get("name")),
                    attrs=attrs,
                    start=float(rec.get("start") or 0.0) + offset,
                    trace_id=self.trace_id,
                )
                sp.duration = (
                    float(rec["duration"])
                    if rec.get("duration") is not None else 0.0
                )
                adopted.append(sp)
            self._finished.extend(adopted)
        return len(adopted)

    # -- read side -------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in start order."""
        with self._lock:
            finished = list(self._finished)
        return sorted(finished, key=lambda s: (s.start, s.span_id))

    def spans_named(self, prefix: str) -> List[Span]:
        """Finished spans whose name equals or starts with ``prefix.``."""
        return [
            s for s in self.spans
            if s.name == prefix or s.name.startswith(prefix + ".")
        ]

    def export_jsonl(self, path: str, mode: str = "w") -> int:
        """Write one JSON object per finished span; return the span count.

        ``mode="w"`` (the default) truncates and writes every finished
        span.  ``mode="a"`` appends only spans not yet exported to *any*
        path — the incremental form a long-running ``serve`` process
        uses to export after each job without clobbering earlier spans.
        """
        if mode not in ("w", "a"):
            raise ValueError(f"export_jsonl mode must be 'w' or 'a', got {mode!r}")
        spans = self.spans
        if mode == "a":
            spans = [sp for sp in spans if sp.span_id not in self._exported_ids]
        with open(path, mode, encoding="utf-8") as fh:
            for sp in spans:
                fh.write(json.dumps(sp.to_dict(), sort_keys=True))
                fh.write("\n")
        with self._lock:
            self._exported_ids.update(sp.span_id for sp in spans)
        return len(spans)

    def reset(self) -> None:
        """Drop all spans, restart the epoch, and open a new trace."""
        with self._lock:
            self._epoch = time.perf_counter()
            self._epoch_wall = time.time()
            self.trace_id = new_trace_id()
            self._next_id = 1
            self._local = threading.local()
            self._finished.clear()
            self._exported_ids.clear()
