"""Property-based tests: BIST controller vs. software march runner."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bist.controller import BistController
from repro.bist.microcode import compile_march, decompile
from repro.core.fault_primitives import parse_fp
from repro.march.notation import Direction, MarchElement, MarchOp, MarchTest
from repro.march.simulator import run_march
from repro.memory.array import Topology
from repro.memory.fault_machine import BehavioralFault
from repro.memory.simulator import FaultyMemory

FAULT_FPS = (
    "<1v [w0BL] r1v/0/0>",
    "<0v [w1BL] r0v/0/1>",
    "<1v [w1BL] w0v/1/->",
    "<[w1 w0] r0/1/1>",
)


@st.composite
def consistent_march_tests(draw):
    n_elements = draw(st.integers(1, 4))
    state = draw(st.sampled_from((0, 1)))
    elements = [MarchElement(Direction.EITHER, (MarchOp("w", state),))]
    for _ in range(n_elements):
        direction = draw(
            st.sampled_from((Direction.UP, Direction.DOWN, Direction.EITHER))
        )
        ops = []
        for _ in range(draw(st.integers(1, 4))):
            if draw(st.booleans()):
                ops.append(MarchOp("r", state))
            else:
                state = draw(st.sampled_from((0, 1)))
                ops.append(MarchOp("w", state))
        elements.append(MarchElement(direction, tuple(ops)))
    return MarchTest("generated", tuple(elements))


@settings(max_examples=40, deadline=None)
@given(
    consistent_march_tests(),
    st.sampled_from(FAULT_FPS),
    st.integers(0, 5),
    st.sampled_from((0, 1, None)),
)
def test_controller_equals_run_march(test, fp_text, victim_raw, node_value):
    """Identical fail streams for any test, fault, victim and arming."""
    topology = Topology(3, 2)
    victim = victim_raw % topology.size
    fp = parse_fp(fp_text)

    def memory():
        fault = BehavioralFault.from_fp(
            fp, victim, topology, node_value=node_value
        )
        return FaultyMemory(topology, fault)

    reference = run_march(test, memory(), either_as=Direction.UP)
    result = BistController(
        compile_march(test, Direction.UP), memory()
    ).run()
    assert result.passed == (not reference.detected)
    assert [
        (f.address, f.expected, f.observed) for f in result.fails
    ] == [
        (m.address, m.expected, m.observed) for m in reference.mismatches
    ]


@settings(max_examples=40, deadline=None)
@given(consistent_march_tests())
def test_compile_decompile_identity_after_resolution(test):
    """decompile(compile(t)) == t once ⇕ is resolved."""
    program = compile_march(test, Direction.DOWN)
    recovered = decompile(program)
    assert len(recovered.march_elements) == len(test.march_elements)
    for original, back in zip(test.march_elements, recovered.march_elements):
        assert back.ops == original.ops
        expected = (
            Direction.DOWN if original.direction is Direction.EITHER
            else original.direction
        )
        assert back.direction is expected


@settings(max_examples=30, deadline=None)
@given(consistent_march_tests())
def test_fault_free_bist_always_passes(test):
    memory = FaultyMemory(Topology(3, 2))
    assert BistController(compile_march(test), memory).run().passed
