"""Tests for the BIST controller FSM."""

import pytest

from repro.bist.controller import BistController
from repro.bist.microcode import compile_march
from repro.core.fault_primitives import parse_fp
from repro.march.library import IFA_13, MARCH_C_MINUS, MARCH_PF_PLUS, MATS_PLUS
from repro.march.notation import parse_march
from repro.march.simulator import run_march
from repro.memory.array import Topology
from repro.memory.fault_machine import BehavioralFault, DataRetentionFault
from repro.memory.simulator import FaultyMemory

TOPO = Topology(4, 2)


def fresh(fp_text=None, node_value=None, victim=0):
    if fp_text is None:
        return FaultyMemory(TOPO)
    fault = BehavioralFault.from_fp(
        parse_fp(fp_text), victim, TOPO, node_value=node_value
    )
    return FaultyMemory(TOPO, fault)


class TestBasics:
    def test_fault_free_passes(self):
        result = BistController(compile_march(MATS_PLUS), fresh()).run()
        assert result.passed
        assert result.cycles == MATS_PLUS.operation_count(TOPO.size)

    def test_detects_partial_fault(self):
        memory = fresh("<1v [w0BL] r1v/0/0>", node_value=1)
        result = BistController(compile_march(MARCH_PF_PLUS), memory).run()
        assert not result.passed
        assert result.first_fail is not None

    def test_stop_at_first(self):
        memory = fresh("<1v [w0BL] r1v/0/0>", node_value=1)
        controller = BistController(
            compile_march(MARCH_PF_PLUS), memory, stop_at_first=True
        )
        result = controller.run()
        assert len(result.fails) == 1

    def test_step_by_step(self):
        controller = BistController(compile_march(MATS_PLUS), fresh())
        steps = 0
        while controller.step() is not None:
            steps += 1
        assert steps == MATS_PLUS.operation_count(TOPO.size)
        assert controller.done

    def test_pause_instruction_forwards(self):
        fault = DataRetentionFault(3, TOPO, retention_time=0.05)
        memory = FaultyMemory(TOPO, fault)
        result = BistController(compile_march(IFA_13), memory).run()
        assert not result.passed

    def test_cycle_budget_guard(self):
        controller = BistController(compile_march(MATS_PLUS), fresh())
        with pytest.raises(RuntimeError):
            controller.run(max_cycles=3)

    def test_single_cell_memory(self):
        memory = FaultyMemory(Topology(1, 1))
        result = BistController(compile_march(MARCH_C_MINUS), memory).run()
        assert result.passed

    def test_empty_memory_rejected(self):
        class Empty:
            size = 0
        with pytest.raises(ValueError):
            BistController(compile_march(MATS_PLUS), Empty())


class TestEquivalence:
    """The controller and the software march runner must agree exactly."""

    @pytest.mark.parametrize("fp_text,node_value", [
        ("<1v [w0BL] r1v/0/0>", 0),
        ("<1v [w0BL] r1v/0/0>", 1),
        ("<0v [w1BL] r0v/0/1>", 1),
        ("<1v [w1BL] w0v/1/->", 0),
        ("<[w1 w0] r0/1/1>", None),
    ])
    @pytest.mark.parametrize("test", [MATS_PLUS, MARCH_C_MINUS, MARCH_PF_PLUS],
                             ids=lambda t: t.name)
    def test_same_fails(self, test, fp_text, node_value):
        for victim in range(TOPO.size):
            reference = run_march(test, fresh(fp_text, node_value, victim))
            result = BistController(
                compile_march(test), fresh(fp_text, node_value, victim)
            ).run()
            assert result.passed == (not reference.detected)
            assert (
                [(f.address, f.expected, f.observed) for f in result.fails]
                == [(m.address, m.expected, m.observed)
                    for m in reference.mismatches]
            )

    def test_down_elements_agree(self):
        test = parse_march("{⇓(w1); ⇓(r1,w0); ⇑(r0)}", "down test")
        reference = run_march(test, fresh())
        result = BistController(compile_march(test), fresh()).run()
        assert result.passed and not reference.detected
