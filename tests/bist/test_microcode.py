"""Tests for march microcode compilation."""

import pytest

from repro.bist.microcode import (
    MicroInstruction,
    MicroProgram,
    compile_march,
    decompile,
)
from repro.march.library import ALL_TESTS, IFA_13, MARCH_PF_PLUS, MATS_PLUS
from repro.march.notation import Direction, parse_march


class TestMicroInstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroInstruction("x", 0)
        with pytest.raises(ValueError):
            MicroInstruction("w", 2)
        with pytest.raises(ValueError):
            MicroInstruction("p")  # pause needs a duration

    def test_encode_decode_roundtrip(self):
        for word in range(16):
            assert MicroInstruction.decode(word).encode() == word

    def test_encode_fields(self):
        instr = MicroInstruction("r", 1, last=True, up=False)
        word = instr.encode()
        assert word & 0b1 == 1          # data
        assert word & 0b10              # read
        assert word & 0b100             # last
        assert not word & 0b1000        # down

    def test_pause_has_no_encoding(self):
        with pytest.raises(ValueError):
            MicroInstruction("p", seconds=0.1).encode()

    def test_decode_range(self):
        with pytest.raises(ValueError):
            MicroInstruction.decode(16)


class TestMicroProgram:
    def test_requires_instructions(self):
        with pytest.raises(ValueError):
            MicroProgram("x", ())

    def test_final_op_must_close_element(self):
        with pytest.raises(ValueError):
            MicroProgram("x", (MicroInstruction("w", 0, last=False),))

    def test_element_count(self):
        program = compile_march(MATS_PLUS)
        assert program.n_elements == 3

    def test_store_size(self):
        program = compile_march(MATS_PLUS)  # 5 operations
        assert program.store_size_bits() == 20


class TestCompileDecompile:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    def test_roundtrip_preserves_operations(self, test):
        recovered = decompile(compile_march(test))
        assert len(recovered.march_elements) == len(test.march_elements)
        for original, back in zip(test.march_elements,
                                  recovered.march_elements):
            assert back.ops == original.ops

    def test_either_resolution(self):
        test = parse_march("{⇕(w0); ⇕(r0)}")
        up = decompile(compile_march(test, Direction.UP))
        down = decompile(compile_march(test, Direction.DOWN))
        assert all(e.direction is Direction.UP for e in up.march_elements)
        assert all(e.direction is Direction.DOWN for e in down.march_elements)

    def test_explicit_directions_preserved(self):
        test = parse_march("{⇑(w0); ⇓(r0,w1)}")
        recovered = decompile(compile_march(test))
        assert [e.direction for e in recovered.march_elements] == [
            Direction.UP, Direction.DOWN,
        ]

    def test_pauses_survive(self):
        program = compile_march(IFA_13)
        recovered = decompile(program)
        assert len(recovered.pauses) == 2
        assert recovered.pauses[0].seconds == pytest.approx(0.1)

    def test_march_pf_plus_store_budget(self):
        """March PF+ fits in a realistically small microcode ROM."""
        program = compile_march(MARCH_PF_PLUS)
        assert program.store_size_bits() <= 256
