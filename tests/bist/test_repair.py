"""Tests for the redundancy-allocation algorithm."""

import pytest

from repro.bist.repair import allocate_repair
from repro.memory.array import Topology

TOPO = Topology(4, 4)


def addr(row, col):
    return TOPO.address_of(row, col)


class TestMustRepair:
    def test_full_row_forces_spare_row(self):
        fails = [addr(1, c) for c in range(4)]
        solution = allocate_repair(TOPO, fails, spare_rows=1, spare_cols=1)
        assert solution.repairable
        assert solution.spare_rows_used == (1,)
        assert solution.spare_cols_used == ()

    def test_full_column_forces_spare_col(self):
        fails = [addr(r, 2) for r in range(4)]
        solution = allocate_repair(TOPO, fails, spare_rows=1, spare_cols=1)
        assert solution.repairable
        assert solution.spare_cols_used == (2,)

    def test_cascading_must_repair(self):
        # Row 0 fully bad (needs the spare row); column 1 then has three
        # more fails with no spare rows left (needs the spare column).
        fails = [addr(0, c) for c in range(4)]
        fails += [addr(r, 1) for r in (1, 2, 3)]
        solution = allocate_repair(TOPO, fails, spare_rows=1, spare_cols=1)
        assert solution.repairable
        assert solution.spare_rows_used == (0,)
        assert solution.spare_cols_used == (1,)


class TestGreedy:
    def test_single_fail_uses_one_spare(self):
        solution = allocate_repair(TOPO, [addr(2, 3)], 1, 1)
        assert solution.repairable
        assert solution.spares_used == 1

    def test_no_fails_uses_nothing(self):
        solution = allocate_repair(TOPO, [], 2, 2)
        assert solution.repairable
        assert solution.spares_used == 0

    def test_diagonal_exceeds_spares(self):
        fails = [addr(i, i) for i in range(3)]
        solution = allocate_repair(TOPO, fails, 1, 1)
        assert not solution.repairable
        assert len(solution.uncovered) == 1

    def test_diagonal_fits_with_enough_spares(self):
        fails = [addr(i, i) for i in range(3)]
        solution = allocate_repair(TOPO, fails, 2, 1)
        assert solution.repairable

    def test_prefers_line_covering_more_fails(self):
        fails = [addr(1, 0), addr(1, 2), addr(3, 3)]
        solution = allocate_repair(TOPO, fails, 1, 1)
        assert solution.repairable
        assert solution.spare_rows_used == (1,)

    def test_zero_spares_with_fails(self):
        solution = allocate_repair(TOPO, [addr(0, 0)], 0, 0)
        assert not solution.repairable

    def test_negative_spares_rejected(self):
        with pytest.raises(ValueError):
            allocate_repair(TOPO, [], -1, 0)


class TestProperties:
    def test_solution_covers_everything_when_repairable(self):
        import itertools
        import random

        rng = random.Random(7)
        for _ in range(50):
            fails = {
                TOPO.address_of(rng.randrange(4), rng.randrange(4))
                for _ in range(rng.randrange(6))
            }
            spare_rows, spare_cols = rng.randrange(3), rng.randrange(3)
            solution = allocate_repair(TOPO, fails, spare_rows, spare_cols)
            assert len(solution.spare_rows_used) <= spare_rows
            assert len(solution.spare_cols_used) <= spare_cols
            if solution.repairable:
                for address in fails:
                    row, col = TOPO.row_of(address), TOPO.column_of(address)
                    assert (
                        row in solution.spare_rows_used
                        or col in solution.spare_cols_used
                    )
            else:
                assert solution.uncovered
