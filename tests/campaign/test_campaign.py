"""Campaign orchestration: local, resumed, failed and service-backed."""

import json

import pytest

from repro import telemetry
from repro.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignResult,
    CornerMatrix,
    render_report,
    run_matrix_campaign,
)
from repro.campaign import runner as campaign_runner
from repro.cli import main
from repro.errors import SpecValidationError
from repro.service import SweepService
from repro.service.jobs import result_payload

#: A grid small enough for test time yet rich enough that the x0.5
#: cycle corner demonstrably moves the Table 1 inventory.
SMALL_GRID = dict(
    opens=("CELL", "BL_CELLS_REFERENCE", "SENSE_AMPLIFIER"),
    n_r=8,
    n_u=6,
)


def small_config(**overrides):
    kwargs = dict(
        matrix=CornerMatrix.from_spec("cycle=1.0,0.5"),
        **SMALL_GRID,
    )
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


class TestConfigValidation:
    def test_only_table1_campaigns_are_supported(self):
        with pytest.raises(SpecValidationError):
            small_config(experiment="fig3").validate()

    def test_resume_needs_a_checkpoint_path(self):
        with pytest.raises(SpecValidationError):
            small_config(resume=True).validate()

    def test_corner_jobs_must_be_positive(self):
        with pytest.raises(SpecValidationError):
            small_config(corner_jobs=0).validate()


class TestLocalCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_matrix_campaign(small_config())

    def test_both_report_claims_hold(self, result):
        assert result.report.all_hold
        assert result.executed == 2
        assert result.resumed == 0

    def test_nominal_payload_matches_a_direct_run_exactly(self, result):
        spec = small_config().base_spec()
        direct = result_payload(spec, spec.profile().run(spec, None))
        assert result.payload_for("nominal") == direct

    def test_stressed_corner_moves_the_inventory(self, result):
        nominal = result.payload_for("nominal")
        fast = result.payload_for("cycle=x0.5")

        def keys(payload):
            return {
                (row["ffm_sim"], row["open"])
                for row in payload["rows"]
            }

        assert keys(fast) != keys(nominal)

    def test_counts_reconcile_at_every_corner(self, result):
        for entry in result.entries:
            m = entry["metrics"]
            assert m["detected"] + m["escaped"] == m["faults"]
            assert m["absorbable"] + m["true_escapes"] == m["escaped"]
            assert len(entry["escapes"]) == m["escaped"]

    def test_rendering_the_artifact_reproduces_the_report(self, result):
        # Through a JSON round trip, as `campaign report` would see it.
        artifact = json.loads(json.dumps(result.artifact))
        assert render_report(artifact).render() == result.report.render()

    def test_unknown_corner_lookup_raises(self, result):
        with pytest.raises(KeyError):
            result.payload_for("no-such-corner")


def fake_payload(spec):
    return {
        "kind": "job-result",
        "address": spec.address,
        "rows": [],
    }


@pytest.fixture
def canned_local(monkeypatch):
    """Replace per-corner execution with an instant canned payload."""
    calls = []

    def execute(spec, work_dir, retry_policy):
        calls.append(spec.address)
        return fake_payload(spec)

    monkeypatch.setattr(campaign_runner, "_execute_local", execute)
    return calls


class TestCheckpointResume:
    def test_finished_corners_are_not_re_executed(
        self, tmp_path, canned_local
    ):
        path = str(tmp_path / "campaign.jsonl")
        first = run_matrix_campaign(
            small_config(checkpoint_path=path)
        )
        assert (first.executed, first.resumed) == (2, 0)
        assert len(canned_local) == 2

        second = run_matrix_campaign(
            small_config(checkpoint_path=path, resume=True)
        )
        assert (second.executed, second.resumed) == (0, 2)
        assert len(canned_local) == 2  # nothing re-ran
        assert [e["metrics"] for e in second.entries] == [
            e["metrics"] for e in first.entries
        ]

    def test_checkpoints_for_other_addresses_are_ignored(
        self, tmp_path, canned_local
    ):
        from repro.io import CheckpointStore

        path = str(tmp_path / "campaign.jsonl")
        config = small_config(checkpoint_path=path)
        pairs = config.matrix.job_specs(config.base_spec())
        _, nominal_spec = pairs[0]
        with CheckpointStore(path) as store:
            store.record(
                campaign_runner._checkpoint_key(nominal_spec),
                {"kind": "job-result", "address": "not-this-job"},
            )
        result = run_matrix_campaign(
            small_config(checkpoint_path=path, resume=True)
        )
        assert (result.executed, result.resumed) == (2, 0)


class TestFailureHandling:
    def test_failed_corners_raise_after_all_corners_settle(
        self, tmp_path, monkeypatch
    ):
        def execute(spec, work_dir, retry_policy):
            if spec.technology is not None:
                raise RuntimeError("corner exploded")
            return fake_payload(spec)

        monkeypatch.setattr(campaign_runner, "_execute_local", execute)
        path = str(tmp_path / "campaign.jsonl")
        with pytest.raises(CampaignError) as exc_info:
            run_matrix_campaign(small_config(checkpoint_path=path))
        message = str(exc_info.value)
        assert "cycle=x0.5" in message
        assert "resume" in message

        # The nominal corner finished and was checkpointed, so a resumed
        # retry only needs the corner that failed.
        monkeypatch.setattr(
            campaign_runner, "_execute_local",
            lambda spec, work_dir, retry_policy: fake_payload(spec),
        )
        result = run_matrix_campaign(
            small_config(checkpoint_path=path, resume=True)
        )
        assert (result.executed, result.resumed) == (1, 1)


class TestTelemetry:
    def test_campaign_counters_count_corner_jobs(self, canned_local):
        telemetry.enable()
        try:
            run_matrix_campaign(small_config(corner_jobs=2))
            metrics = telemetry.get_metrics()
            assert metrics.counter_value("campaign.corners") == 2
            assert metrics.counter_value("campaign.jobs.completed") == 2
            assert metrics.counter_value("campaign.jobs.failed") == 0
        finally:
            telemetry.reset()
            telemetry.disable()


class TestServiceCampaign:
    def test_service_and_local_paths_produce_identical_payloads(self):
        local = run_matrix_campaign(small_config())
        with SweepService(port=0) as service:
            remote = run_matrix_campaign(
                small_config(service_url=service.url, timeout=120.0)
            )
        assert isinstance(remote, CampaignResult)
        for entry in local.entries:
            assert (
                remote.payload_for(entry["corner"]) == entry["payload"]
            )
        assert remote.report.render() == local.report.render()


class TestCampaignCli:
    def test_run_then_report_round_trips(self, tmp_path, capsys):
        artifact_path = str(tmp_path / "campaign.json")
        rc = main([
            "campaign", "run",
            "--corners", "cycle=1.0,0.5",
            "--opens", "CELL", "BL_CELLS_REFERENCE", "SENSE_AMPLIFIER",
            "--n-r", "8", "--n-u", "6",
            "--json", artifact_path,
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "Stress-corner campaign" in captured.out
        assert "2 corner job(s) executed" in captured.err

        rc = main(["campaign", "report", "--json", artifact_path])
        reported = capsys.readouterr()
        assert rc == 0
        assert reported.out == captured.out

    def test_bad_corner_spec_exits_two(self, capsys):
        rc = main([
            "campaign", "run", "--corners", "freq=1.0,0.5",
        ])
        assert rc == 2
        assert "invalid spec" in capsys.readouterr().err

    def test_report_rejects_a_non_campaign_document(
        self, tmp_path, capsys
    ):
        path = tmp_path / "not-a-campaign.json"
        path.write_text('{"kind": "job-result"}', encoding="utf-8")
        rc = main(["campaign", "report", "--json", str(path)])
        assert rc == 2
        assert "invalid document" in capsys.readouterr().err
