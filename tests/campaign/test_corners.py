"""Corner matrices: parsing, expansion and per-corner job specs."""

import pytest

from repro.campaign import (
    CYCLE_SCALED_FIELDS,
    DEFAULT_CORNERS_SPEC,
    VDD_SCALED_FIELDS,
    Corner,
    CornerAxis,
    CornerMatrix,
)
from repro.circuit.technology import default_technology
from repro.errors import SpecValidationError
from repro.service.jobs import JobSpec


def _base_spec():
    return JobSpec(experiment="table1", n_r=4, n_u=4).validate()


class TestFromSpec:
    def test_parses_axes_in_declaration_order(self):
        matrix = CornerMatrix.from_spec(
            "vdd=1.0,0.8;temperature=25,85;cycle=1.0,0.5"
        )
        assert [axis.name for axis in matrix.axes] == [
            "vdd", "temperature", "cycle",
        ]
        assert matrix.axes[1].values == (25.0, 85.0)
        assert matrix.size == 8

    def test_default_spec_parses_to_a_two_by_two_matrix(self):
        matrix = CornerMatrix.from_spec(DEFAULT_CORNERS_SPEC)
        assert matrix.size == 4

    def test_blank_segments_are_skipped(self):
        matrix = CornerMatrix.from_spec("vdd=1.0,0.9; ;")
        assert len(matrix.axes) == 1

    @pytest.mark.parametrize("text", [
        "",                    # no axes at all
        "vdd",                 # missing '='
        "vdd=",                # missing values
        "freq=1.0,0.5",        # unknown axis
        "vdd=abc",             # unparsable value
        "vdd=1.0;vdd=0.9",     # repeated axis
        "vdd=1.0,1.0",         # duplicate values
        "cycle=0",             # scale must be > 0
        "cycle=-0.5",
        "temperature=inf",     # non-finite
    ])
    def test_bad_specs_raise(self, text):
        with pytest.raises(SpecValidationError):
            CornerMatrix.from_spec(text)

    def test_axis_values_must_exist(self):
        with pytest.raises(SpecValidationError):
            CornerAxis("vdd", ()).validate()


class TestExpansion:
    def test_all_identity_corner_is_nominal_with_no_overrides(self):
        (corner,) = CornerMatrix.from_spec(
            "vdd=1.0;temperature=25;cycle=1.0"
        ).corners()
        assert corner.name == "nominal"
        assert corner.overrides == ()
        assert not corner.stressed

    def test_corner_names_carry_only_the_stressed_tokens(self):
        matrix = CornerMatrix.from_spec("vdd=1.0,0.8;cycle=1.0,0.5")
        assert [c.name for c in matrix.corners()] == [
            "nominal", "cycle=x0.5", "vdd=x0.8", "vdd=x0.8,cycle=x0.5",
        ]

    def test_temperature_axis_overrides_the_temperature_field(self):
        corners = CornerMatrix.from_spec("temperature=25,85").corners()
        assert corners[0].overrides == ()
        assert corners[1].name == "temp=85C"
        assert corners[1].overrides == (("temperature", 85.0),)
        assert corners[1].technology().temperature == 85.0

    def test_vdd_axis_scales_the_whole_supply_ladder(self):
        base = default_technology()
        (_, low) = CornerMatrix.from_spec("vdd=1.0,0.8").corners()
        assert dict(low.overrides) == {
            f: getattr(base, f) * 0.8 for f in VDD_SCALED_FIELDS
        }

    def test_cycle_axis_scales_the_phase_budget_but_not_t_wl_off(self):
        base = default_technology()
        (_, fast) = CornerMatrix.from_spec("cycle=1.0,0.5").corners()
        assert dict(fast.overrides) == {
            f: getattr(base, f) * 0.5 for f in CYCLE_SCALED_FIELDS
        }
        assert "t_wl_off" not in dict(fast.overrides)
        assert fast.technology().t_wl_off == base.t_wl_off

    def test_unphysical_corner_fails_fast_at_expansion(self):
        # vdd x0.1 pulls the rail below the (unscaled) v_threshold.
        matrix = CornerMatrix.from_spec("vdd=0.1")
        with pytest.raises(SpecValidationError):
            matrix.corners()


class TestJobSpecs:
    def test_nominal_corner_spec_is_the_plain_job(self):
        base = _base_spec()
        pairs = CornerMatrix.from_spec("cycle=1.0,0.5").job_specs(base)
        nominal_spec = pairs[0][1]
        assert nominal_spec.technology is None
        assert nominal_spec.address == base.address

    def test_distinct_corners_never_share_a_content_address(self):
        base = _base_spec()
        pairs = CornerMatrix.from_spec(
            "vdd=1.0,0.8;cycle=1.0,0.5"
        ).job_specs(base)
        addresses = [spec.address for _, spec in pairs]
        assert len(set(addresses)) == len(addresses) == 4

    def test_identical_corners_from_different_matrices_dedupe(self):
        base = _base_spec()
        a = dict(CornerMatrix.from_spec("cycle=1.0,0.5").job_specs(base))
        b = dict(
            CornerMatrix.from_spec("cycle=0.5;vdd=1.0").job_specs(base)
        )
        (fast_a,) = [s for c, s in a.items() if c.stressed]
        (fast_b,) = [s for c, s in b.items() if c.stressed]
        assert fast_a.address == fast_b.address

    def test_corner_specs_resolve_to_the_corner_technology(self):
        base = _base_spec()
        ((_, nominal), (fast_corner, fast_spec)) = CornerMatrix.from_spec(
            "cycle=1.0,0.5"
        ).job_specs(base)
        assert nominal.resolved_technology() is None
        assert fast_spec.resolved_technology() == fast_corner.technology()


class TestCornerValue:
    def test_stressed_flag_tracks_the_override_set(self):
        nominal = Corner("nominal", (("vdd", 1.0),), ())
        stressed = Corner(
            "temp=85C", (("temperature", 85.0),),
            (("temperature", 85.0),),
        )
        assert not nominal.stressed
        assert stressed.stressed
        assert nominal.technology() == default_technology()
