"""The partially-stuck-at code and the escape classification."""

import itertools

import pytest

from repro.campaign import (
    STUCK_LEVELS,
    EscapeClass,
    PartiallyStuckAtCode,
    analyze_escapes,
    classify_escape,
)
from repro.core.ffm import FFM, canonical_fp
from repro.errors import SpecValidationError


class TestCodeConstruction:
    def test_codeword_always_agrees_with_the_stuck_cell(self):
        code = PartiallyStuckAtCode(4)
        for value, pos, level in itertools.product(
            range(1 << code.k), range(code.n), (0, 1)
        ):
            data = tuple((value >> i) & 1 for i in range(code.k))
            word = code.encode(data, pos, level)
            assert word[pos] == level

    def test_encode_decode_round_trip(self):
        code = PartiallyStuckAtCode(5)
        for value, pos, level in itertools.product(
            range(1 << code.k), range(code.n), (0, 1)
        ):
            data = tuple((value >> i) & 1 for i in range(code.k))
            assert code.decode(code.encode(data, pos, level)) == data

    def test_one_redundant_bit_masks_any_single_stuck_cell(self):
        code = PartiallyStuckAtCode(8)
        assert code.k == 7
        assert code.masks_everywhere(0)
        assert code.masks_everywhere(1)

    @pytest.mark.parametrize("n", [1, 0, -3, 2.0, True, "8"])
    def test_invalid_sizes_raise(self, n):
        with pytest.raises(SpecValidationError):
            PartiallyStuckAtCode(n).validate()

    def test_encode_rejects_bad_arguments(self):
        code = PartiallyStuckAtCode(4)
        with pytest.raises(SpecValidationError):
            code.encode((1, 0), 0, 1)  # k = 3, not 2
        with pytest.raises(SpecValidationError):
            code.encode((1, 0, 1), 4, 1)  # position out of range
        with pytest.raises(SpecValidationError):
            code.encode((1, 0, 1), 0, 2)  # level must be a bit

    def test_decode_rejects_short_words(self):
        with pytest.raises(SpecValidationError):
            PartiallyStuckAtCode(4).decode((1, 0, 1))

    def test_exhaustive_check_is_capped(self):
        with pytest.raises(SpecValidationError):
            PartiallyStuckAtCode(18).masks(0, 0)


class TestClassification:
    def test_storage_class_ffms_are_absorbable(self):
        for ffm, level in STUCK_LEVELS.items():
            verdict, classified = classify_escape(ffm)
            assert verdict is EscapeClass.ABSORBABLE
            assert classified is ffm
            assert level in (0, 1)

    @pytest.mark.parametrize("ffm", [
        FFM.RDF0, FFM.RDF1, FFM.DRDF0, FFM.DRDF1, FFM.IRF0, FFM.IRF1,
    ])
    def test_read_path_ffms_are_true_escapes(self, ffm):
        verdict, classified = classify_escape(ffm)
        assert verdict is EscapeClass.TRUE_ESCAPE
        assert classified is ffm

    def test_fault_primitives_classify_through_their_behaviour(self):
        verdict, ffm = classify_escape(canonical_fp(FFM.SF1))
        assert verdict is EscapeClass.ABSORBABLE
        assert ffm is FFM.SF1
        verdict, ffm = classify_escape(canonical_fp(FFM.IRF0))
        assert verdict is EscapeClass.TRUE_ESCAPE
        assert ffm is FFM.IRF0


class TestAnalyzeEscapes:
    def test_partitions_the_escape_set_exactly(self):
        escaped = [
            canonical_fp(FFM.SF1),
            canonical_fp(FFM.WDF0),
            canonical_fp(FFM.RDF1),
        ]
        analysis = analyze_escapes(escaped)
        assert len(analysis.absorbable) == 2
        assert len(analysis.true_escapes) == 1
        assert analysis.escaped == 3
        assert analysis.reconciles(len(escaped))
        assert not analysis.reconciles(len(escaped) + 1)

    def test_empty_escape_set_reconciles_to_zero(self):
        analysis = analyze_escapes(())
        assert analysis.escaped == 0
        assert analysis.reconciles(0)

    def test_unbackable_classification_demotes_to_true_escape(
        self, monkeypatch
    ):
        # A code that cannot actually prove the mask must not count the
        # fault as absorbed, however storage-like its FFM is.
        monkeypatch.setattr(
            PartiallyStuckAtCode, "masks_everywhere",
            lambda self, level: False,
        )
        analysis = analyze_escapes([canonical_fp(FFM.SF1)])
        assert analysis.absorbable == []
        assert len(analysis.true_escapes) == 1
