"""Tests for the multi-column electrical array."""

import pytest

from repro.circuit.array import ElectricalArray
from repro.circuit.defects import FloatingNode, OpenDefect, OpenLocation
from repro.march.library import MARCH_PF_PLUS, SCAN
from repro.march.simulator import run_march
from repro.memory.array import Topology

TOPO = Topology(n_rows=3, n_cols=2)


class TestFaultFree:
    def test_reads_writes_route_by_address(self):
        array = ElectricalArray(TOPO)
        for address in TOPO.addresses():
            array.write(address, address % 2)
        for address in TOPO.addresses():
            assert array.read(address) == address % 2

    def test_columns_are_independent(self):
        array = ElectricalArray(TOPO)
        array.write(0, 1)           # row 0, column 0
        assert array.read(1) == 0   # row 0, column 1 untouched

    def test_march_passes(self):
        array = ElectricalArray(TOPO)
        assert not run_march(SCAN, array).detected

    def test_size(self):
        assert ElectricalArray(TOPO).size == 6


class TestWithDefect:
    def make(self, column=1):
        array = ElectricalArray(
            TOPO,
            defect=OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e6),
            defect_column=column,
        )
        return array

    def test_defect_lands_in_chosen_column(self):
        array = self.make(column=1)
        assert array.columns[1].defect is not None
        assert array.columns[0].defect is None

    def test_partial_fault_is_column_local(self):
        array = self.make(column=1)
        array.set_floating_voltages(0.0)
        # Column 0 cells are healthy regardless of the neighbour's defect.
        array.write(0, 1)
        assert array.read(0) == 1

    def test_march_pf_plus_detects_in_either_column(self):
        for column in (0, 1):
            array = self.make(column=column)
            array.set_floating_voltages(0.0)
            result = run_march(MARCH_PF_PLUS, array, stop_at_first=True)
            assert result.detected
            flagged = result.mismatches[0].address
            assert TOPO.column_of(flagged) == column

    def test_completing_ops_cross_addresses_on_same_column(self):
        """The arming write at address k-n_cols sensitizes the victim at k."""
        array = self.make(column=0)
        array.set_floating_voltages(0.0)
        array.write(0, 1)   # victim row 0, col 0
        array.write(4, 1)   # row 2, col 0: drives the BL high
        assert array.read(0) == 1      # masked
        array.write(2, 0)   # row 1, col 0: completing w0 on the column
        assert array.read(0) == 0      # sensitized (RDF1)

    def test_other_column_writes_do_not_arm(self):
        array = self.make(column=0)
        array.set_floating_voltages(3.3)
        array.write(0, 1)
        array.write(3, 0)   # row 1, col 1: different bit line
        assert array.read(0) == 1      # still masked

    def test_defect_column_bounds(self):
        with pytest.raises(IndexError):
            ElectricalArray(TOPO, defect_column=2)

    def test_floating_override(self):
        array = self.make()
        array.set_floating_voltages(
            0.0, nodes={FloatingNode.OUTPUT_BUFFER: 3.3}
        )
        assert array.defective_column.buffer_voltage() == pytest.approx(3.3)
