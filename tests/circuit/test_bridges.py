"""Unit tests for bridge defects in the column model."""

import pytest

from repro.circuit.bridges import BridgeDefect, BridgeLocation
from repro.circuit.column import DRAMColumn


class TestBridgeDefect:
    def test_validation(self):
        with pytest.raises(ValueError):
            BridgeDefect(BridgeLocation.CELL_CELL, 0.0)
        with pytest.raises(ValueError):
            BridgeDefect(BridgeLocation.CELL_CELL, 1e3, row=-1)

    def test_partner_row(self):
        bridge = BridgeDefect(BridgeLocation.CELL_CELL, 1e3, row=1)
        assert bridge.partner_row == 2

    def test_partner_only_for_cell_cell(self):
        bridge = BridgeDefect(BridgeLocation.CELL_BITLINE, 1e3)
        with pytest.raises(ValueError):
            bridge.partner_row

    def test_with_resistance(self):
        bridge = BridgeDefect(BridgeLocation.CELL_CELL, 1e3)
        assert bridge.with_resistance(2e3).resistance == 2e3

    def test_str(self):
        text = str(BridgeDefect(BridgeLocation.CELL_CELL, 5e3, row=1))
        assert "cell-cell" in text and "row 1" in text


class TestColumnWithBridge:
    def test_partner_must_fit(self):
        with pytest.raises(ValueError):
            DRAMColumn(
                n_rows=2,
                defect=BridgeDefect(BridgeLocation.CELL_CELL, 1e3, row=1),
            )

    def test_bridge_does_not_split_bitline(self):
        col = DRAMColumn(
            n_rows=3, defect=BridgeDefect(BridgeLocation.CELL_CELL, 1e3)
        )
        assert col._bt_nodes == ["bt"]

    def test_cell_cell_bridge_equalizes_over_time(self):
        col = DRAMColumn(
            n_rows=3, defect=BridgeDefect(BridgeLocation.CELL_CELL, 1e5)
        )
        col.reset({0: 1, 1: 0})
        for _ in range(4):
            col.precharge_cycle()
        v0, v1 = col.cell_voltage(0), col.cell_voltage(1)
        assert abs(v0 - v1) < 0.3
        assert 0.5 < v0 < 2.8

    def test_weak_bridge_is_benign(self):
        col = DRAMColumn(
            n_rows=3, defect=BridgeDefect(BridgeLocation.CELL_CELL, 1e12)
        )
        col.reset({0: 1, 1: 0})
        col.precharge_cycle()
        assert col.read(0) == 1
        assert col.read(1) == 0

    def test_cell_bitline_bridge_leaks_to_precharge(self):
        col = DRAMColumn(
            n_rows=3, defect=BridgeDefect(BridgeLocation.CELL_BITLINE, 1e5)
        )
        col.reset({0: 0})
        col.precharge_cycle()
        assert col.cell_voltage(0) > 0.5  # pulled toward v_precharge

    def test_strong_bridge_disturbs_during_neighbour_ops(self):
        col = DRAMColumn(
            n_rows=3, defect=BridgeDefect(BridgeLocation.CELL_BITLINE, 1e4)
        )
        col.reset({0: 1, 1: 0})
        col.read(1)   # drives the BL to 0 during restore
        assert col.cell_voltage(0) < 1.5
