"""Tests for the anchor-calibration utility."""

import pytest

from repro.circuit.calibration import (
    PAPER_R_HIGH_U,
    PAPER_R_LOW_U,
    CalibrationResult,
    calibrate_to_paper,
    measure_fig4_anchors,
)
from repro.circuit.technology import default_technology


@pytest.fixture(scope="module")
def result():
    return calibrate_to_paper()


class TestCalibration:
    def test_base_technology_exhibits_anchors(self):
        low, high = measure_fig4_anchors(default_technology())
        assert low is not None and high is not None
        assert high < low          # the Fig. 4 monotonicity

    def test_converges_close_to_paper(self, result):
        assert result.low_error <= 0.25
        assert result.high_error <= 0.25

    def test_converges_quickly(self, result):
        assert result.iterations <= 6

    def test_preserves_region_shape(self, result):
        low, high = measure_fig4_anchors(result.technology)
        assert low is not None and high is not None
        assert high < low

    def test_only_timing_knobs_move(self, result):
        base = default_technology()
        tech = result.technology
        assert tech.c_cell == base.c_cell
        assert tech.v_reference == base.v_reference
        assert tech.sa_offset == base.sa_offset
        assert tech.t_share != base.t_share or tech.t_write != base.t_write

    def test_errors_are_relative(self):
        tech = default_technology()
        r = CalibrationResult(tech, PAPER_R_LOW_U, PAPER_R_HIGH_U, 1)
        assert r.low_error == 0.0 and r.high_error == 0.0
