"""Property-based tests on the electrical substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.circuit.column import DRAMColumn
from repro.circuit.network import Network
from repro.memory.array import MemoryArray, Topology

ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 2), st.sampled_from((0, 1))),
    min_size=1,
    max_size=8,
)


@settings(max_examples=25, deadline=None)
@given(ops)
def test_fault_free_column_is_an_ideal_memory(script):
    """Random op sequences on the defect-free column match a bit array.

    Reads of never-written cells are excluded (they default to 0 in both
    models here because reset establishes 0, so they are checked too).
    """
    column = DRAMColumn(n_rows=3)
    model = MemoryArray(Topology(3, 1))
    for is_write, row, value in script:
        if is_write:
            column.write(row, value)
            model.write(row, value)
        else:
            assert column.read(row) == model.read(row)
    for row in range(3):
        assert column.logical_state(row) == model.read(row)


@settings(max_examples=25, deadline=None)
@given(ops)
def test_voltages_stay_within_rails(script):
    column = DRAMColumn(n_rows=3)
    vdd = column.tech.vdd
    for is_write, row, value in script:
        if is_write:
            column.write(row, value)
        else:
            column.read(row)
        for name, voltage in column.net.voltages().items():
            assert -0.01 <= voltage <= vdd + 0.01, (name, voltage)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0.0, 3.3), min_size=2, max_size=5),
    st.floats(1e2, 1e7),
    st.floats(1e-10, 1e-7),
)
def test_isolated_network_conserves_charge(voltages, resistance, duration):
    """Resistor-coupled capacitors without drivers keep total charge."""
    net = Network()
    caps = [(i + 1) * 20e-15 for i in range(len(voltages))]
    for i, (c, v) in enumerate(zip(caps, voltages)):
        net.add_node(f"n{i}", c, v=v)
    for i in range(len(voltages) - 1):
        net.connect(f"n{i}", f"n{i+1}", resistance)
    q0 = sum(c * v for c, v in zip(caps, voltages))
    net.run(duration)
    q1 = sum(
        c * net.voltage(f"n{i}") for i, c in enumerate(caps)
    )
    assert abs(q1 - q0) <= 1e-9 * max(abs(q0), 1e-15) + 1e-20


@settings(max_examples=50, deadline=None)
@given(
    st.floats(0.0, 3.3), st.floats(0.0, 3.3),
    st.floats(1e2, 1e6), st.floats(1e-10, 1e-7),
)
def test_driven_node_moves_monotonically_toward_source(v0, v_drive, r, t):
    net = Network()
    net.add_node("n", 50e-15, v=v0)
    net.drive("n", v_drive, r)
    net.run(t)
    v1 = net.voltage("n")
    low, high = min(v0, v_drive), max(v0, v_drive)
    assert low - 1e-9 <= v1 <= high + 1e-9
