"""Unit and behaviour tests for the DRAM column model."""

import pytest

from repro.circuit.column import DRAMColumn
from repro.circuit.defects import FloatingNode, OpenDefect, OpenLocation
from repro.circuit.technology import default_technology


@pytest.fixture()
def column():
    return DRAMColumn(n_rows=3)


class TestFaultFree:
    def test_write_then_read_both_values(self, column):
        column.write(0, 1)
        column.write(1, 0)
        assert column.read(0) == 1
        assert column.read(1) == 0

    def test_cells_reach_full_levels(self, column):
        column.write(0, 1)
        assert column.cell_voltage(0) == pytest.approx(3.3, abs=0.05)
        column.write(0, 0)
        assert column.cell_voltage(0) == pytest.approx(0.0, abs=0.05)

    def test_reads_are_restorative(self, column):
        column.write(0, 1)
        for _ in range(5):
            assert column.read(0) == 1
        assert column.cell_voltage(0) == pytest.approx(3.3, abs=0.05)

    def test_neighbours_undisturbed(self, column):
        column.write(0, 1)
        column.write(1, 0)
        for _ in range(4):
            column.read(0)
        assert column.read(1) == 0

    def test_preload_via_reset(self, column):
        column.reset({0: 1, 2: 1})
        assert column.read(0) == 1
        assert column.read(1) == 0
        assert column.read(2) == 1

    def test_logical_state_threshold(self, column):
        assert column.logical_state(0) == 0
        column.write(0, 1)
        assert column.logical_state(0) == 1
        assert 0.0 < column.state_threshold < column.tech.vdd

    def test_history_records_operations(self, column):
        column.write(0, 1)
        column.read(0)
        kinds = [record.kind for record in column.history]
        assert kinds == ["w", "r"]
        assert column.history[-1].read_result == 1

    def test_precharge_cycle_is_harmless(self, column):
        column.write(0, 1)
        column.precharge_cycle()
        assert column.read(0) == 1

    def test_invalid_row_rejected(self, column):
        with pytest.raises(ValueError):
            column.read(5)
        with pytest.raises(ValueError):
            column.write(-1, 0)

    def test_invalid_value_rejected(self, column):
        with pytest.raises(ValueError):
            column.write(0, 2)

    def test_needs_one_row(self):
        with pytest.raises(ValueError):
            DRAMColumn(n_rows=0)


class TestConstruction:
    def test_no_defect_single_bt_node(self, column):
        assert column._bt_nodes == ["bt"]

    @pytest.mark.parametrize(
        "location", [
            OpenLocation.BL_PRECHARGE_CELLS,
            OpenLocation.BL_CELLS_REFERENCE,
            OpenLocation.BL_REFERENCE_SENSEAMP,
            OpenLocation.BL_SENSEAMP_IO,
        ],
    )
    def test_bitline_opens_split_bt(self, location):
        col = DRAMColumn(defect=OpenDefect(location, 1e5))
        assert col._bt_nodes == ["bt0", "bt1"]

    def test_device_opens_do_not_split(self):
        col = DRAMColumn(defect=OpenDefect(OpenLocation.CELL, 1e5))
        assert col._bt_nodes == ["bt"]

    def test_complementary_defect_rejected(self):
        defect = OpenDefect(OpenLocation.CELL, 1e5).complementary()
        with pytest.raises(ValueError):
            DRAMColumn(defect=defect)

    def test_defect_row_must_exist(self):
        with pytest.raises(ValueError):
            DRAMColumn(n_rows=2, defect=OpenDefect(OpenLocation.CELL, 1e5, row=5))

    def test_total_bitline_capacitance_preserved(self):
        tech = default_technology()
        col = DRAMColumn(defect=OpenDefect(OpenLocation.BL_CELLS_REFERENCE, 1e5))
        caps = sum(col.net._caps[col.net.node_index(n)] for n in col._bt_nodes)
        assert caps == pytest.approx(tech.c_bl_total)


class TestFloatingVoltages:
    def test_bitline_float_targets_cut_section(self):
        col = DRAMColumn(defect=OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e7))
        col.set_floating_voltage(FloatingNode.BIT_LINE, 0.42)
        assert col.bitline_voltage("cells") == pytest.approx(0.42)
        assert col.bitline_voltage("pre") != pytest.approx(0.42)

    def test_bitline_float_whole_line_without_defect(self, column):
        column.set_floating_voltage(FloatingNode.BIT_LINE, 0.42)
        assert column.bitline_voltage("pre") == pytest.approx(0.42)
        assert column.bitline_voltage("io") == pytest.approx(0.42)

    def test_cell_float(self):
        col = DRAMColumn(defect=OpenDefect(OpenLocation.CELL, 1e5, row=1),
                         n_rows=3)
        col.set_floating_voltage(FloatingNode.CELL, 1.1)
        assert col.cell_voltage(1) == pytest.approx(1.1)

    def test_buffer_and_reference_floats(self, column):
        column.set_floating_voltage(FloatingNode.OUTPUT_BUFFER, 2.0)
        column.set_floating_voltage(FloatingNode.REFERENCE_CELL, 0.3)
        assert column.buffer_voltage() == pytest.approx(2.0)
        assert column.reference_voltage() == pytest.approx(0.3)

    def test_word_line_float(self):
        col = DRAMColumn(defect=OpenDefect(OpenLocation.WORD_LINE, 1e9))
        col.set_floating_voltage(FloatingNode.WORD_LINE, 3.0)
        assert col.gate_voltage(0) == pytest.approx(3.0)


class TestOpen4MotivatingExample:
    """The paper's Fig. 1 story, end to end on the electrical model."""

    R_DEF = 1e7

    def make(self, u_bl):
        col = DRAMColumn(
            n_rows=3,
            defect=OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, self.R_DEF),
        )
        col.reset({0: 1})
        col.set_floating_voltage(FloatingNode.BIT_LINE, u_bl)
        return col

    def test_low_bl_read_destroys_stored_one(self):
        col = self.make(0.0)
        assert col.read(0) == 0          # RDF1: reads 0 ...
        assert col.logical_state(0) == 0  # ... and the 1 is destroyed

    def test_high_bl_read_works(self):
        col = self.make(3.3)
        assert col.read(0) == 1

    def test_w1_r1_march_misses_the_fault(self):
        col = self.make(0.0)
        col.write(0, 1)                   # preconditions the BL high
        assert col.read(0) == 1           # fault masked

    def test_completing_w0_sensitizes(self):
        col = self.make(0.0)
        col.write(0, 1)
        col.write(1, 0)                   # completing w0 on a BL neighbour
        assert col.read(0) == 0           # fault sensitized


class TestOpen9WordLine:
    def test_floating_high_gate_charges_stored_zero(self):
        """The paper's SF0: precharge charges the cell through the open."""
        col = DRAMColumn(defect=OpenDefect(OpenLocation.WORD_LINE, 1e9))
        col.reset({0: 0})
        col.set_floating_voltage(FloatingNode.WORD_LINE, 3.3)
        col.precharge_cycle()
        assert col.logical_state(0) == 1

    def test_floating_low_gate_cell_unreachable(self):
        col = DRAMColumn(defect=OpenDefect(OpenLocation.WORD_LINE, 1e9))
        col.reset({0: 0})
        col.set_floating_voltage(FloatingNode.WORD_LINE, 0.0)
        assert col.read(0) == 1           # no signal reads 1 (IRF0) ...
        assert col.logical_state(0) == 0  # ... while the cell keeps its 0

    def test_healthy_word_line_unaffected(self):
        col = DRAMColumn()
        col.reset({0: 0})
        col.precharge_cycle()
        assert col.logical_state(0) == 0


class TestOpen8Buffer:
    def test_stale_buffer_read(self):
        """IRF0 through the forwarding open: r0 returns the stale buffer."""
        col = DRAMColumn(
            n_rows=3, defect=OpenDefect(OpenLocation.BL_SENSEAMP_IO, 1e9)
        )
        col.reset({0: 0})
        col.set_floating_voltage(FloatingNode.BIT_LINE, 3.3)
        col.set_floating_voltage(FloatingNode.OUTPUT_BUFFER, 3.3)
        assert col.read(0) == 1
        assert col.logical_state(0) == 0

    def test_writes_arm_the_buffer(self):
        col = DRAMColumn(
            n_rows=3, defect=OpenDefect(OpenLocation.BL_SENSEAMP_IO, 1e9)
        )
        col.reset({0: 0})
        col.write(1, 1)                   # drives the IO side and the buffer
        assert col.buffer_voltage() > col.tech.vdd / 2
        assert col.read(0) == 1           # completed IRF0


class TestOpen1Cell:
    def test_weak_write_leaves_cell_midlevel(self):
        col = DRAMColumn(defect=OpenDefect(OpenLocation.CELL, 5e5))
        col.reset({})
        col.set_floating_voltage(FloatingNode.CELL, 3.3)
        col.write(0, 0)
        assert col.cell_voltage(0) > 1.0  # the w0 failed to discharge fully

    def test_healthy_resistance_writes_fine(self):
        col = DRAMColumn(defect=OpenDefect(OpenLocation.CELL, 1e3))
        col.reset({})
        col.set_floating_voltage(FloatingNode.CELL, 3.3)
        col.write(0, 0)
        assert col.read(0) == 0
