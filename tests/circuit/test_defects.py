"""Unit tests for the open-defect catalogue."""

import pytest

from repro.circuit.defects import (
    FloatingNode,
    OpenDefect,
    OpenLocation,
    floating_nodes,
)


class TestOpenLocation:
    def test_nine_locations(self):
        assert len(OpenLocation) == 9

    def test_numbers_match_the_paper(self):
        assert OpenLocation.CELL.number == 1
        assert OpenLocation.REFERENCE_CELL.number == 2
        assert OpenLocation.PRECHARGE.number == 3
        assert OpenLocation.BL_PRECHARGE_CELLS.number == 4
        assert OpenLocation.BL_CELLS_REFERENCE.number == 5
        assert OpenLocation.BL_REFERENCE_SENSEAMP.number == 6
        assert OpenLocation.SENSE_AMPLIFIER.number == 7
        assert OpenLocation.BL_SENSEAMP_IO.number == 8
        assert OpenLocation.WORD_LINE.number == 9

    def test_str(self):
        assert str(OpenLocation.CELL) == "Open 1"


class TestFloatingNodes:
    """The Section 2 rules: which voltages float per defect."""

    def test_cell_open(self):
        assert floating_nodes(OpenLocation.CELL) == (FloatingNode.CELL,)

    def test_reference_open(self):
        assert floating_nodes(OpenLocation.REFERENCE_CELL) == (
            FloatingNode.REFERENCE_CELL,
        )

    @pytest.mark.parametrize(
        "location", [
            OpenLocation.PRECHARGE,
            OpenLocation.BL_PRECHARGE_CELLS,
            OpenLocation.BL_CELLS_REFERENCE,
            OpenLocation.BL_REFERENCE_SENSEAMP,
        ],
    )
    def test_bitline_opens(self, location):
        assert floating_nodes(location) == (FloatingNode.BIT_LINE,)

    def test_sense_amp_open(self):
        assert floating_nodes(OpenLocation.SENSE_AMPLIFIER) == (
            FloatingNode.REFERENCE_CELL,
            FloatingNode.OUTPUT_BUFFER,
        )

    def test_forwarding_open(self):
        assert floating_nodes(OpenLocation.BL_SENSEAMP_IO) == (
            FloatingNode.BIT_LINE,
            FloatingNode.OUTPUT_BUFFER,
        )

    def test_word_line_open(self):
        assert floating_nodes(OpenLocation.WORD_LINE) == (
            FloatingNode.WORD_LINE,
        )


class TestOpenDefect:
    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            OpenDefect(OpenLocation.CELL, -1.0)

    def test_negative_row_rejected(self):
        with pytest.raises(ValueError):
            OpenDefect(OpenLocation.CELL, 1e5, row=-1)

    def test_complementary_is_involution(self):
        defect = OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e5)
        assert defect.complementary().complementary() == defect

    def test_complementary_flips_line(self):
        defect = OpenDefect(OpenLocation.CELL, 1e5)
        assert defect.on_true_line
        assert not defect.complementary().on_true_line

    def test_with_resistance(self):
        defect = OpenDefect(OpenLocation.CELL, 1e5)
        assert defect.with_resistance(2e5).resistance == 2e5
        assert defect.with_resistance(2e5).location is OpenLocation.CELL

    def test_floating_nodes_property(self):
        defect = OpenDefect(OpenLocation.WORD_LINE, 1e8)
        assert defect.floating_nodes == (FloatingNode.WORD_LINE,)

    def test_str_mentions_number_and_resistance(self):
        text = str(OpenDefect(OpenLocation.CELL, 1.5e5))
        assert "Open 1" in text and "1.5e+05" in text
