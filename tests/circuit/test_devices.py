"""Unit tests for the sense amplifier, word-line gate and technology."""

import math

import pytest

from repro.circuit.senseamp import SenseAmplifier
from repro.circuit.technology import Technology, default_technology
from repro.circuit.wordline import WordLineGate


class TestSenseAmplifier:
    def test_fires_on_positive_differential(self):
        sa = SenseAmplifier(offset=0.01)
        assert sa.sense(1.70, 1.60)
        assert sa.fired and sa.value == 1

    def test_fires_on_negative_differential(self):
        sa = SenseAmplifier(offset=0.01)
        assert sa.sense(1.55, 1.60)
        assert sa.value == 0

    def test_dead_zone(self):
        sa = SenseAmplifier(offset=0.01)
        assert not sa.sense(1.651, 1.65)
        assert not sa.fired and sa.value is None
        assert sa.rail(3.3) is None

    def test_rails(self):
        sa = SenseAmplifier(offset=0.01)
        sa.sense(2.0, 1.0)
        assert sa.rail(3.3) == 3.3
        sa.sense(1.0, 2.0)
        assert sa.rail(3.3) == 0.0

    def test_reset(self):
        sa = SenseAmplifier(offset=0.01)
        sa.sense(2.0, 1.0)
        sa.reset()
        assert not sa.fired and sa.value is None

    def test_flip_when_crossed(self):
        sa = SenseAmplifier(offset=0.01)
        sa.sense(2.0, 1.0)
        sa.maybe_flip(0.5, 2.5)
        assert sa.value == 0

    def test_no_flip_when_holding(self):
        sa = SenseAmplifier(offset=0.01)
        sa.sense(2.0, 1.0)
        sa.maybe_flip(3.0, 0.3)
        assert sa.value == 1

    def test_late_fire_during_write(self):
        sa = SenseAmplifier(offset=0.01)
        sa.sense(1.65, 1.65)  # dead zone
        sa.maybe_flip(3.0, 0.3)
        assert sa.fired and sa.value == 1


class TestWordLineGate:
    def test_instant_without_open(self):
        gate = WordLineGate(capacitance=5e-15, resistance=0.0)
        mean = gate.advance(3.3, 1e-9)
        assert mean == 3.3
        assert gate.voltage == 3.3

    def test_exponential_with_open(self):
        r, c, t = 1e9, 5e-15, 5e-9
        gate = WordLineGate(capacitance=c, resistance=r, voltage=0.0)
        gate.advance(3.3, t)
        expected = 3.3 * (1 - math.exp(-t / (r * c)))
        assert gate.voltage == pytest.approx(expected, rel=1e-9)

    def test_mean_between_start_and_end(self):
        gate = WordLineGate(capacitance=5e-15, resistance=1e8, voltage=0.0)
        mean = gate.advance(3.3, 1e-9)
        assert 0.0 < mean < gate.voltage

    def test_zero_duration_keeps_state(self):
        gate = WordLineGate(capacitance=5e-15, resistance=1e8, voltage=1.0)
        assert gate.advance(3.3, 0.0) == 1.0
        assert gate.voltage == 1.0

    def test_conduction_clamps(self):
        gate = WordLineGate(capacitance=5e-15)
        assert gate.conduction(0.0, 0.7, 3.3) == 0.0
        assert gate.conduction(3.3, 0.7, 3.3) == 1.0
        assert 0.0 < gate.conduction(2.0, 0.7, 3.3) < 1.0

    def test_conduction_validates_levels(self):
        gate = WordLineGate(capacitance=5e-15)
        with pytest.raises(ValueError):
            gate.conduction(1.0, 3.3, 0.7)


class TestTechnology:
    def test_total_bitline_capacitance(self):
        tech = default_technology()
        assert tech.c_bl_total == pytest.approx(300e-15)

    def test_transfer_ratio(self):
        tech = default_technology()
        assert tech.transfer_ratio == pytest.approx(30 / 330)

    def test_read_signal_sign(self):
        tech = default_technology()
        assert tech.read_signal(tech.vdd) > 0
        assert tech.read_signal(0.0) < 0
        assert tech.read_signal(tech.v_precharge) == 0

    def test_scaled_override(self):
        tech = default_technology().scaled(c_cell=60e-15)
        assert tech.c_cell == 60e-15
        assert tech.vdd == default_technology().vdd

    def test_frozen(self):
        tech = default_technology()
        with pytest.raises(Exception):
            tech.vdd = 5.0
