"""The array-first grid engine agrees with the scalar oracle.

Four layers are pinned here:

* :func:`repro.circuit.network._expm_stack` produces bit-identical
  exponentials to the scalar :func:`~repro.circuit.network._expm`;
* :meth:`NetworkEnsemble.run_grid` reproduces per-member
  :meth:`Network.run_batch` solves bit-exactly (shared propagator
  cache, stacked matmul) — as a Hypothesis property over random
  topologies, member resistances and initial states;
* sense-amp lane disagreement *forks* a :class:`GridBatch` member
  instead of demoting it, and the resulting region map is identical to
  the scalar analyzer's — including the word-line grid, whose points
  carry private gates;
* only members whose solves actually trip a guard are demoted, and the
  demoted members re-run through the scalar path.

Plus the prefix memo: :meth:`GridBatch.snapshot`/:meth:`~GridBatch.restore`
round-trip the mutable state, and a replayed prefix yields the same
observations as a cold execution.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro import telemetry
from repro.circuit.defects import FloatingNode, OpenLocation
from repro.circuit.network import (
    Network,
    NetworkEnsemble,
    _expm,
    _expm_stack,
    propagator_cache_clear,
    _install_solver_fault_hook,
)
from repro.core.analysis import ColumnFaultAnalyzer, default_grid_for
from repro.core.fault_primitives import parse_sos


@pytest.fixture(autouse=True)
def _fresh_cache():
    propagator_cache_clear()
    yield
    propagator_cache_clear()


# -- stacked exponentials ------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 4),
    st.integers(2, 6),
    st.integers(0, 2 ** 31 - 1),
)
def test_expm_stack_matches_scalar_expm_bitwise(m, n, seed):
    rng = np.random.default_rng(seed)
    mats = rng.uniform(-2.0, 2.0, size=(m, n, n))
    stacked = _expm_stack(mats)
    for i in range(m):
        assert np.array_equal(stacked[i], _expm(mats[i]))


# -- ensemble vs per-member scalar solves --------------------------------------

def _nodes(n):
    return [f"n{i}" for i in range(n)]


@st.composite
def ensemble_cases(draw):
    n = draw(st.integers(2, 4))
    n_members = draw(st.integers(1, 3))
    n_lanes = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    caps = rng.uniform(1e-14, 5e-13, size=n)
    v0 = rng.uniform(0.0, 3.3, size=(n_members, n, n_lanes))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    shared = [
        (i, j, float(r))
        for (i, j), r in zip(pairs, rng.uniform(1e3, 1e6, len(pairs)))
        if draw(st.booleans())
    ]
    # The defect edge: same pair in every member, a different resistance
    # per member — exactly the grid engine's R_def axis.
    di, dj = pairs[draw(st.integers(0, len(pairs) - 1))]
    member_r = rng.uniform(1e3, 1e7, size=n_members)
    drive_v = float(rng.uniform(0.0, 3.3))
    duration = float(rng.uniform(1e-10, 1e-7))
    return (n, caps, v0, shared, (di, dj), member_r, drive_v, duration)


def _build_host(n, caps):
    net = Network()
    for name, c in zip(_nodes(n), caps):
        net.add_node(name, float(c))
    return net


@settings(max_examples=40, deadline=None)
@given(ensemble_cases())
def test_run_grid_matches_per_member_run_batch_bitwise(case):
    n, caps, v0, shared, (di, dj), member_r, drive_v, duration = case
    names = _nodes(n)
    host = _build_host(n, caps)
    ens = NetworkEnsemble(host, len(member_r))
    for i, j, r in shared:
        ens.connect(names[i], names[j], r)
    ens.drive(names[0], drive_v, 2e3)
    for m, r in enumerate(member_r):
        ens.connect_member(m, names[di], names[dj], float(r))
    result = ens.run_grid(duration, v0)
    assert result.tripped == {}
    for m, r in enumerate(member_r):
        ref = _build_host(n, caps)
        for i, j, rr in shared:
            ref.connect(names[i], names[j], rr)
        ref.drive(names[0], drive_v, 2e3)
        ref.connect(names[di], names[dj], float(r))
        expected = ref.run_batch(duration, v0[m])
        assert np.array_equal(np.asarray(result.voltages)[m], expected)


@settings(max_examples=20, deadline=None)
@given(ensemble_cases())
def test_run_grid_blocks_ragged_matches_same_width(case):
    n, caps, v0, shared, (di, dj), member_r, drive_v, duration = case
    names = _nodes(n)
    host = _build_host(n, caps)
    ens = NetworkEnsemble(host, len(member_r))
    for i, j, r in shared:
        ens.connect(names[i], names[j], r)
    ens.drive(names[0], drive_v, 2e3)
    for m, r in enumerate(member_r):
        ens.connect_member(m, names[di], names[dj], float(r))
    stacked = ens.run_grid(duration, v0)
    blocks = ens.run_grid_blocks(duration, [v0[m] for m in range(len(member_r))])
    assert blocks.tripped == {}
    for m in range(len(member_r)):
        assert np.array_equal(
            np.asarray(stacked.voltages)[m], np.asarray(blocks.voltages[m])
        )


def test_floating_ensemble_holds_charge():
    host = _build_host(3, [1e-13, 2e-13, 3e-13])
    ens = NetworkEnsemble(host, 2)
    v0 = np.arange(2 * 3 * 2, dtype=float).reshape(2, 3, 2)
    result = ens.run_grid(5e-9, v0)
    assert np.array_equal(np.asarray(result.voltages), v0)


# -- fault-hook driven guard trips: only the hit member demotes ----------------

def test_guard_trip_demotes_only_the_divergent_member():
    host = _build_host(2, [1e-13, 1e-13])
    ens = NetworkEnsemble(host, 3)
    ens.connect("n0", "n1", 1e4)
    ens.drive("n0", 1.0, 1e3)
    v0 = np.full((3, 2, 2), 0.5)

    def poison_member_one(voltages, info):
        if info.get("member") == 1:
            out = np.array(voltages)
            out[0, 0] = np.nan
            return out
        return voltages

    _install_solver_fault_hook(poison_member_one)
    try:
        result = ens.run_grid(1e-9, v0)
    finally:
        _install_solver_fault_hook(None)
    assert set(result.tripped) == {1}
    assert result.tripped[1] == "nan"
    clean = ens.run_grid(1e-9, v0)
    assert clean.tripped == {}
    for m in (0, 2):
        assert np.array_equal(
            np.asarray(result.voltages)[m], np.asarray(clean.voltages)[m]
        )


# -- GridBatch forking and analyzer identity -----------------------------------

def _labels(analyzer, sos, floating, grid):
    return analyzer.region_map(sos, floating, grid=grid).labels


@pytest.mark.parametrize(
    "location,floating,sos_text",
    [
        (OpenLocation.BL_PRECHARGE_CELLS, FloatingNode.BIT_LINE, "1r1"),
        (OpenLocation.SENSE_AMPLIFIER, FloatingNode.BIT_LINE, "0w1"),
        (OpenLocation.WORD_LINE, FloatingNode.WORD_LINE, "1r1"),
    ],
)
def test_region_map_grid_equals_scalar(location, floating, sos_text):
    grid = default_grid_for(location, n_r=5, n_u=4)
    sos = parse_sos(sos_text)
    scalar = ColumnFaultAnalyzer(
        location, grid=grid, batch_u=False, grid_engine=False
    )
    gridded = ColumnFaultAnalyzer(location, grid=grid, grid_engine=True)
    assert _labels(scalar, sos, floating, grid) == _labels(
        gridded, sos, floating, grid
    )


def test_lane_disagreement_forks_instead_of_demoting():
    # A full-width U axis across the sense threshold guarantees lanes of
    # one member disagree on the latch decision somewhere in the sweep.
    location = OpenLocation.BL_PRECHARGE_CELLS
    grid = default_grid_for(location, n_r=5, n_u=6)
    sos = parse_sos("1r1")
    telemetry.enable()
    telemetry.reset()
    try:
        gridded = ColumnFaultAnalyzer(location, grid=grid, grid_engine=True)
        grid_labels = _labels(gridded, sos, FloatingNode.BIT_LINE, grid)
        counters = telemetry.get_metrics().snapshot()["counters"]
    finally:
        telemetry.disable()
        telemetry.reset()
    assert counters.get("column.grid_forks", 0) > 0
    assert counters.get("column.grid_demotions", 0) == 0
    scalar = ColumnFaultAnalyzer(
        location, grid=grid, batch_u=False, grid_engine=False
    )
    assert grid_labels == _labels(scalar, sos, FloatingNode.BIT_LINE, grid)


def test_full_survey_grid_equals_scalar():
    location = OpenLocation.BL_SENSEAMP_IO
    grid = default_grid_for(location, n_r=4, n_u=3)

    def fingerprint(grid_engine):
        analyzer = ColumnFaultAnalyzer(
            location, grid=grid, grid_engine=grid_engine,
            batch_u=grid_engine,
        )
        return [
            (f.location, f.floating, f.probe_sos, f.ffm, f.region.labels)
            for f in analyzer.survey()
        ]

    assert fingerprint(True) == fingerprint(False)


# -- snapshot/restore and the prefix memo --------------------------------------

def _fresh_batch(location=OpenLocation.BL_PRECHARGE_CELLS):
    from repro.circuit.column import GridBatch

    grid = default_grid_for(location, n_r=3, n_u=3)
    analyzer = ColumnFaultAnalyzer(location, grid=grid, grid_engine=True)
    column = analyzer.make_column(grid.r_values[0])
    data = {}
    lanes = []
    for u in grid.u_values:
        column.reset(data)
        column.set_floating_voltage(FloatingNode.BIT_LINE, u)
        lanes.append(column.net.state_vector())
    column.reset(data)
    return GridBatch(
        column, tuple(grid.r_values), np.stack(lanes, axis=1)
    ), analyzer


def test_snapshot_restore_round_trips_the_execution_state():
    batch, analyzer = _fresh_batch()
    snap = batch.snapshot()
    batch.write(analyzer.victim_row, 1)
    batch.read(analyzer.victim_row)
    after_ops = (batch.V.copy(), batch._fired.copy(), batch._value.copy())
    batch.restore(snap)
    assert np.array_equal(batch.V, snap[0])
    assert not batch._fired.any()
    # Replaying the same operations from the snapshot reproduces the
    # state bit for bit.
    batch.write(analyzer.victim_row, 1)
    batch.read(analyzer.victim_row)
    assert np.array_equal(batch.V, after_ops[0])
    assert np.array_equal(batch._fired, after_ops[1])
    assert np.array_equal(batch._value, after_ops[2])


def test_snapshot_refuses_demoted_batches():
    batch, _ = _fresh_batch()
    batch._demote_members([0], "guard")
    with pytest.raises(ValueError):
        batch.snapshot()
    with pytest.raises(ValueError):
        batch.restore((batch.V.copy(), batch._fired.copy(),
                       batch._value.copy(), {}))


def test_prefix_reuse_is_invisible_in_the_observations():
    # Two sequences sharing a two-op prefix: the second run resumes from
    # the memoized prefix state and must classify identically to a cold
    # analyzer that never shared anything.
    location = OpenLocation.BL_PRECHARGE_CELLS
    grid = default_grid_for(location, n_r=4, n_u=3)
    soses = [parse_sos("1w0r0"), parse_sos("1w0w1"), parse_sos("1w0r0r0")]

    telemetry.enable()
    telemetry.reset()
    try:
        warm = ColumnFaultAnalyzer(location, grid=grid, grid_engine=True)
        warm_maps = [
            _labels(warm, sos, FloatingNode.BIT_LINE, grid) for sos in soses
        ]
        counters = telemetry.get_metrics().snapshot()["counters"]
    finally:
        telemetry.disable()
        telemetry.reset()
    assert counters.get("analyzer.grid_prefix_reuses", 0) > 0
    for sos, warm_map in zip(soses, warm_maps):
        cold = ColumnFaultAnalyzer(location, grid=grid, grid_engine=True)
        assert _labels(cold, sos, FloatingNode.BIT_LINE, grid) == warm_map
