"""Unit tests for the lumped-RC network solver."""

import math

import pytest

from repro.circuit.network import Network, OPEN


class TestTopology:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node("a", 1e-15)
        with pytest.raises(ValueError):
            net.add_node("a", 1e-15)

    def test_nonpositive_capacitance_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.add_node("a", 0.0)

    def test_self_connection_rejected(self):
        net = Network()
        net.add_node("a", 1e-15)
        with pytest.raises(ValueError):
            net.connect("a", "a", 1e3)

    def test_open_edge_is_noop(self):
        net = Network()
        net.add_node("a", 1e-15, v=1.0)
        net.add_node("b", 1e-15, v=0.0)
        net.connect("a", "b", OPEN)
        net.run(1e-6)
        assert net.voltage("a") == pytest.approx(1.0)
        assert net.voltage("b") == pytest.approx(0.0)

    def test_node_lookup_by_name_and_index(self):
        net = Network()
        idx = net.add_node("a", 1e-15, v=0.5)
        assert net.voltage("a") == net.voltage(idx) == 0.5
        assert net.node_names == ("a",)


class TestTransients:
    def test_driven_rc_charging_matches_analytic(self):
        c, r, v_drive, t = 100e-15, 1e3, 3.3, 2e-10
        net = Network()
        net.add_node("n", c, v=0.0)
        net.drive("n", v_drive, r)
        net.run(t)
        expected = v_drive * (1 - math.exp(-t / (r * c)))
        assert net.voltage("n") == pytest.approx(expected, rel=1e-6)

    def test_two_capacitor_charge_sharing(self):
        c1, c2 = 300e-15, 30e-15
        net = Network()
        net.add_node("bl", c1, v=1.65)
        net.add_node("cell", c2, v=3.3)
        net.connect("bl", "cell", 8e3)
        net.run(1e-7)  # long enough to equilibrate
        common = (c1 * 1.65 + c2 * 3.3) / (c1 + c2)
        assert net.voltage("bl") == pytest.approx(common, rel=1e-6)
        assert net.voltage("cell") == pytest.approx(common, rel=1e-6)

    def test_charge_conservation_without_drivers(self):
        net = Network()
        net.add_node("a", 100e-15, v=2.0)
        net.add_node("b", 50e-15, v=0.5)
        net.connect("a", "b", 5e3)
        q0 = 100e-15 * 2.0 + 50e-15 * 0.5
        net.run(3e-9)
        q1 = 100e-15 * net.voltage("a") + 50e-15 * net.voltage("b")
        assert q1 == pytest.approx(q0, rel=1e-9)

    def test_floating_node_holds_charge(self):
        net = Network()
        net.add_node("float", 30e-15, v=2.2)
        net.add_node("driven", 30e-15, v=0.0)
        net.drive("driven", 3.3, 1e3)
        net.run(1e-6)
        assert net.voltage("float") == pytest.approx(2.2)
        assert net.voltage("driven") == pytest.approx(3.3, rel=1e-6)

    def test_partial_relaxation_midway(self):
        c, r = 100e-15, 1e4
        tau = r * c
        net = Network()
        net.add_node("n", c, v=0.0)
        net.drive("n", 1.0, r)
        net.run(tau)
        assert net.voltage("n") == pytest.approx(1 - math.exp(-1), rel=1e-6)

    def test_two_drivers_divider(self):
        net = Network()
        net.add_node("n", 10e-15)
        net.drive("n", 3.3, 1e3)
        net.drive("n", 0.0, 2e3)
        net.run(1e-6)
        expected = 3.3 * (1 / 1e3) / (1 / 1e3 + 1 / 2e3)
        assert net.voltage("n") == pytest.approx(expected, rel=1e-6)

    def test_zero_duration_is_noop(self):
        net = Network()
        net.add_node("n", 1e-15, v=1.0)
        net.drive("n", 0.0, 1e3)
        assert net.run(0.0)["n"] == 1.0

    def test_negative_duration_rejected(self):
        net = Network()
        net.add_node("n", 1e-15)
        with pytest.raises(ValueError):
            net.run(-1.0)

    def test_clear_phase_keeps_voltages(self):
        net = Network()
        net.add_node("n", 1e-15, v=0.0)
        net.drive("n", 3.3, 1e3)
        net.run(1e-6)
        net.clear_phase()
        net.run(1e-6)
        assert net.voltage("n") == pytest.approx(3.3, rel=1e-6)

    def test_stiff_system_stays_stable(self):
        """A very fast edge next to a slow one must not blow up."""
        net = Network()
        net.add_node("a", 10e-15, v=3.3)
        net.add_node("b", 300e-15, v=0.0)
        net.connect("a", "b", 1.0)        # tau ~ 1e-14
        net.drive("b", 1.65, 1e7)         # tau ~ 3e-6
        net.run(5e-9)
        assert 0.0 <= net.voltage("a") <= 3.3
        assert abs(net.voltage("a") - net.voltage("b")) < 1e-3


class TestSetVoltage:
    def test_set_voltage(self):
        net = Network()
        net.add_node("n", 1e-15)
        net.set_voltage("n", 2.5)
        assert net.voltage("n") == 2.5

    def test_voltages_dict(self):
        net = Network()
        net.add_node("a", 1e-15, v=1.0)
        net.add_node("b", 1e-15, v=2.0)
        assert net.voltages() == {"a": 1.0, "b": 2.0}
