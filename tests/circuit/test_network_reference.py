"""Cross-checks of the RC solver against SciPy's reference expm.

The network solver's matrix exponential is hand-rolled (scaling-and-
squaring Taylor); these tests pin it against ``scipy.linalg.expm`` on the
same augmented system, over randomized networks, so any numerical drift
in the hot path is caught by an independent implementation.
"""

import numpy as np
import pytest
import scipy.linalg

from hypothesis import example, given, settings
import hypothesis.strategies as st

from repro.circuit.network import Network, _expm


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 6), st.integers(0, 2 ** 31 - 1))
@example(n=6, seed=282)  # stiff case: aug-norm ~1e8, squaring-dominated error
def test_expm_matches_scipy_on_network_like_matrices(n, seed):
    rng = np.random.default_rng(seed)
    # Build a conductance-Laplacian-like stable matrix: A = -C^-1 G.
    g = rng.uniform(0, 1e-3, size=(n, n))
    g = (g + g.T) / 2
    lap = np.diag(g.sum(axis=1) + rng.uniform(0, 1e-3, n)) - g
    c_inv = rng.uniform(1e12, 1e14, n)
    a = -lap * c_inv[:, None]
    b = rng.uniform(0, 1e15, n)
    t = rng.uniform(1e-10, 1e-7)
    aug = np.zeros((n + 1, n + 1))
    aug[:n, :n] = a * t
    aug[:n, n] = b * t
    ours = _expm(aug)
    reference = scipy.linalg.expm(aug)
    # Tolerance note: for the stiffest draws ||aug|| reaches ~1e8, so
    # scaling-and-squaring needs ~27 squarings and the roundoff of *any*
    # expm implementation is amplified by ~eps * 2^squarings ~ 1e-8
    # relative.  SciPy's own Pade-13 result differs from the exact value
    # by ~5e-8 on such inputs (e.g. the analytically-1 corner entry comes
    # back 1.00000005), so demanding rtol=1e-8 agreement between two
    # correct implementations is not achievable.  rtol=1e-6 still pins
    # the algorithm (a real defect shows up as orders of magnitude, not
    # sub-ppm, drift); atol covers entries that decay to ~0.
    assert np.allclose(ours, reference, rtol=1e-6, atol=1e-9)


def test_expm_identity():
    assert np.allclose(_expm(np.zeros((3, 3))), np.eye(3))


def test_expm_large_norm_stable():
    a = np.array([[-1e6, 0.0], [0.0, -1e6]])
    result = _expm(a)
    assert np.allclose(result, np.zeros((2, 2)), atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_network_against_direct_integration(seed):
    """The phase solver agrees with brute-force Euler integration."""
    rng = np.random.default_rng(seed)
    net = Network()
    caps = rng.uniform(10e-15, 300e-15, 3)
    v0 = rng.uniform(0, 3.3, 3)
    for i in range(3):
        net.add_node(f"n{i}", caps[i], v=v0[i])
    edges = [(0, 1, rng.uniform(1e3, 1e6)), (1, 2, rng.uniform(1e3, 1e6))]
    for a, b, r in edges:
        net.connect(f"n{a}", f"n{b}", r)
    v_drive, r_drive = rng.uniform(0, 3.3), rng.uniform(1e3, 1e5)
    net.drive("n0", v_drive, r_drive)
    duration = 5e-9
    net.run(duration)

    # Reference: explicit Euler with a tiny step.
    v = v0.copy()
    steps = 20000
    dt = duration / steps
    for _ in range(steps):
        dv = np.zeros(3)
        for a, b, r in edges:
            i = (v[b] - v[a]) / r
            dv[a] += i / caps[a]
            dv[b] -= i / caps[b]
        dv[0] += (v_drive - v[0]) / (r_drive * caps[0])
        v = v + dv * dt
    for i in range(3):
        assert net.voltage(f"n{i}") == pytest.approx(v[i], abs=2e-3)
