"""Correctness tests for the process-global propagator cache.

The cache memoizes the affine phase map ``(Phi, phi)`` keyed by a
canonical phase signature; these tests pin the properties the sweep
engine relies on: a cached phase reproduces the uncached solve exactly,
distinct topologies/drivers never collide, and topology changes reach a
different cache entry (the per-phase state itself is never stale,
because the signature covers everything the propagator depends on).
"""

import numpy as np
import pytest

from repro.circuit.network import (
    Network,
    propagator_cache_clear,
    propagator_cache_configure,
    propagator_cache_info,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    propagator_cache_clear()
    yield
    propagator_cache_configure(enabled=True)
    propagator_cache_clear()


def _simple_net(v0=(3.3, 0.0, 1.2)):
    net = Network()
    net.add_node("a", 100e-15, v=v0[0])
    net.add_node("b", 50e-15, v=v0[1])
    net.add_node("c", 200e-15, v=v0[2])
    net.connect("a", "b", 1e4)
    net.connect("b", "c", 5e4)
    net.drive("a", 3.3, 2e3)
    return net


def test_cached_run_matches_uncached_run_exactly():
    """The same phase solved via the cache is bit-identical to a cold solve."""
    net1 = _simple_net()
    net1.run(5e-9)
    first = net1.state_vector()
    assert propagator_cache_info().misses == 1

    net2 = _simple_net()
    net2.run(5e-9)
    assert propagator_cache_info().hits == 1
    assert np.array_equal(first, net2.state_vector())

    propagator_cache_configure(enabled=False)
    net3 = _simple_net()
    net3.run(5e-9)
    assert np.array_equal(first, net3.state_vector())


def test_cache_key_covers_topology_changes():
    """clear_phase + a different topology must not reuse the old propagator."""
    net = _simple_net()
    net.run(5e-9)
    info = propagator_cache_info()
    assert (info.hits, info.misses) == (0, 1)

    # Same network object, new phase topology: different signature.
    net.clear_phase()
    net.connect("a", "c", 7e4)
    net.run(5e-9)
    assert propagator_cache_info().misses == 2

    # Reference: a fresh network with the second topology, cache disabled.
    propagator_cache_configure(enabled=False)
    ref = _simple_net()
    ref.run(5e-9)
    ref.clear_phase()
    ref.connect("a", "c", 7e4)
    ref.run(5e-9)
    assert np.array_equal(net.state_vector(), ref.state_vector())


def test_cache_key_covers_duration_and_drivers():
    net = _simple_net()
    net.run(5e-9)
    net.run(5e-9)            # same signature -> hit
    net.run(7e-9)            # new duration -> miss
    net.drive("c", 0.0, 1e3)  # new driver set -> miss
    net.run(7e-9)
    info = propagator_cache_info()
    assert info.hits == 1
    assert info.misses == 3


def test_distinct_driver_sets_do_not_collide():
    """Signatures of different (voltage, resistance) drivers are distinct."""
    results = []
    for v_drive, r_drive in [(3.3, 2e3), (3.3, 3e3), (1.65, 2e3)]:
        net = Network()
        net.add_node("a", 100e-15, v=0.0)
        net.add_node("b", 50e-15, v=0.0)
        net.connect("a", "b", 1e4)
        net.drive("a", v_drive, r_drive)
        net.run(5e-9)
        results.append(net.voltage("a"))
    # All three phases must have been solved independently...
    assert propagator_cache_info().misses == 3
    # ...and give genuinely different physics.
    assert len({round(v, 9) for v in results}) == 3


def test_edge_orientation_is_canonicalized():
    """connect(a, b) and connect(b, a) describe the same resistor."""
    net1 = Network()
    net1.add_node("a", 100e-15, v=3.3)
    net1.add_node("b", 50e-15, v=0.0)
    net1.connect("a", "b", 1e4)
    net1.run(5e-9)

    net2 = Network()
    net2.add_node("a", 100e-15, v=3.3)
    net2.add_node("b", 50e-15, v=0.0)
    net2.connect("b", "a", 1e4)
    net2.run(5e-9)

    info = propagator_cache_info()
    assert (info.hits, info.misses) == (1, 1)
    assert np.array_equal(net1.state_vector(), net2.state_vector())


def test_lru_eviction_keeps_cache_bounded():
    propagator_cache_configure(maxsize=2)
    try:
        for duration in (1e-9, 2e-9, 3e-9, 4e-9):
            net = _simple_net()
            net.run(duration)
        assert propagator_cache_info().currsize == 2
    finally:
        propagator_cache_configure(maxsize=4096)


def test_run_batch_matches_scalar_runs():
    """One matrix-matrix product equals N independent scalar solves."""
    rng = np.random.default_rng(7)
    lanes = rng.uniform(0.0, 3.3, size=(3, 8))
    scalar = np.empty_like(lanes)
    for j in range(lanes.shape[1]):
        net = _simple_net(v0=lanes[:, j])
        net.run(5e-9)
        scalar[:, j] = net.state_vector()
    net = _simple_net()
    batched = net.run_batch(5e-9, lanes.copy())
    assert np.allclose(batched, scalar, rtol=0, atol=1e-12)


def test_run_batch_does_not_mutate_network_state():
    net = _simple_net()
    before = net.state_vector()
    net.run_batch(5e-9, np.zeros((3, 4)))
    assert np.array_equal(before, net.state_vector())


def test_run_batch_rejects_bad_shapes():
    net = _simple_net()
    with pytest.raises(ValueError):
        net.run_batch(5e-9, np.zeros((4, 2)))
    with pytest.raises(ValueError):
        net.run_batch(5e-9, np.zeros(3))


def test_floating_phase_short_circuits():
    """No edges + no drivers: voltages unchanged, nothing cached."""
    net = Network()
    net.add_node("a", 100e-15, v=1.1)
    net.add_node("b", 50e-15, v=2.2)
    net.run(5e-9)
    assert net.voltage("a") == 1.1
    assert net.voltage("b") == 2.2
    info = propagator_cache_info()
    assert (info.hits, info.misses) == (0, 0)
