"""Property-based tests for the stress-corner physics.

The campaign axes (docs/CAMPAIGNS.md) lean on two monotonicities of the
technology model: heating a cell can only *increase* its leakage (so
``effective_cell_leak`` is monotone-decreasing in temperature), and
scaling the supply ladder up can only *widen* the charge-sharing read
margins.  These invariants hold for every corner a matrix can express,
not just the sampled ones, so they are checked as properties.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.campaign import VDD_SCALED_FIELDS
from repro.circuit.technology import default_technology

temperatures = st.floats(
    min_value=-55.0, max_value=150.0,
    allow_nan=False, allow_infinity=False,
)

#: Supply scale factors a vdd axis would apply (0.5x to 1.5x nominal).
vdd_scales = st.floats(
    min_value=0.5, max_value=1.5,
    allow_nan=False, allow_infinity=False,
)


def _vdd_corner(scale):
    base = default_technology()
    return base.scaled(
        **{f: getattr(base, f) * scale for f in VDD_SCALED_FIELDS}
    )


@settings(max_examples=50, deadline=None)
@given(temperatures, temperatures)
def test_effective_cell_leak_is_monotone_decreasing_in_temperature(
    t_cold, t_hot
):
    """Hotter junction -> more thermal generation -> smaller leak R."""
    if t_cold == t_hot:
        cold = default_technology().at_temperature(t_cold)
        assert cold.effective_cell_leak == cold.r_leak_cell / (
            2.0 ** ((t_cold - 25.0) / 10.0)
        )
        return
    if t_cold > t_hot:
        t_cold, t_hot = t_hot, t_cold
    cold = default_technology().at_temperature(t_cold)
    hot = default_technology().at_temperature(t_hot)
    if t_hot - t_cold < 1e-6:
        # Below float resolution of 2**((T-25)/10) the leak values may
        # coincide exactly; monotone still means never *increasing*.
        assert hot.effective_cell_leak <= cold.effective_cell_leak
        return
    assert hot.effective_cell_leak < cold.effective_cell_leak
    assert hot.nominal_retention_tau < cold.nominal_retention_tau


@settings(max_examples=50, deadline=None)
@given(vdd_scales, vdd_scales)
def test_read_signal_margins_are_monotone_in_vdd(s_low, s_high):
    """A higher supply ladder widens both stored-level read margins."""
    if abs(s_low - s_high) < 1e-9:
        return
    if s_low > s_high:
        s_low, s_high = s_high, s_low
    low, high = _vdd_corner(s_low), _vdd_corner(s_high)
    # Stored 1 develops a positive signal, stored 0 a negative one;
    # both magnitudes grow with the supply scale (the transfer ratio is
    # capacitive, hence scale-invariant).
    assert high.read_signal(high.vdd) > low.read_signal(low.vdd) > 0
    assert high.read_signal(0.0) < low.read_signal(0.0) < 0
    assert abs(high.transfer_ratio - low.transfer_ratio) < 1e-12


@settings(max_examples=50, deadline=None)
@given(vdd_scales)
def test_vdd_corner_expansion_always_validates(scale):
    """Every ladder-scaled corner passes Technology.validate()."""
    corner = _vdd_corner(scale)
    assert corner.vdd == default_technology().vdd * scale
    assert corner.validate() is corner
