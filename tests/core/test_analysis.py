"""Unit tests for the (R_def, U)-plane fault analysis."""

import pytest

from repro.circuit.defects import FloatingNode, OpenLocation
from repro.core.analysis import (
    ColumnFaultAnalyzer,
    PROBE_SOSES,
    SweepGrid,
    default_grid_for,
)
from repro.core.fault_primitives import parse_sos
from repro.core.ffm import FFM


@pytest.fixture(scope="module")
def open4():
    return ColumnFaultAnalyzer(
        OpenLocation.BL_PRECHARGE_CELLS,
        grid=SweepGrid.make(r_min=3e3, r_max=1e7, n_r=6, n_u=5),
    )


class TestSweepGrid:
    def test_make_shapes(self):
        grid = SweepGrid.make(n_r=5, n_u=4)
        assert len(grid.r_values) == 5
        assert len(grid.u_values) == 4

    def test_log_spacing(self):
        grid = SweepGrid.make(r_min=1e3, r_max=1e5, n_r=3)
        assert grid.r_values == pytest.approx((1e3, 1e4, 1e5))

    def test_linear_spacing(self):
        grid = SweepGrid.make(u_min=0.0, u_max=2.0, n_u=3)
        assert grid.u_values == pytest.approx((0.0, 1.0, 2.0))

    def test_coarser(self):
        grid = SweepGrid.make(n_r=6, n_u=6)
        coarse = grid.coarser(2, 3)
        assert len(coarse.r_values) == 3
        assert len(coarse.u_values) == 2

    def test_default_grid_per_location(self):
        for location in OpenLocation:
            grid = default_grid_for(location, n_r=4, n_u=3)
            assert len(grid.r_values) == 4
            assert grid.u_values[-1] == pytest.approx(3.3)

    def test_word_line_range_is_higher(self):
        wl = default_grid_for(OpenLocation.WORD_LINE)
        cell = default_grid_for(OpenLocation.CELL)
        assert wl.r_values[0] > cell.r_values[0]


class TestProbes:
    def test_probe_space_is_the_papers(self):
        assert PROBE_SOSES == ("0", "1", "0w0", "0w1", "1w0", "1w1",
                               "0r0", "1r1")

    def test_probes_parse_and_are_consistent(self):
        for text in PROBE_SOSES:
            assert parse_sos(text).is_consistent()


class TestObserve:
    def test_strong_open_low_bl_gives_rdf1(self, open4):
        obs = open4.observe(parse_sos("1r1"), 1e7, 0.0, FloatingNode.BIT_LINE)
        assert obs.is_faulty
        assert obs.ffm is FFM.RDF1
        assert obs.read_value == 0
        assert obs.faulty_value == 0

    def test_strong_open_high_bl_is_benign(self, open4):
        obs = open4.observe(parse_sos("1r1"), 1e7, 3.3, FloatingNode.BIT_LINE)
        assert not obs.is_faulty

    def test_weak_open_is_benign(self, open4):
        obs = open4.observe(parse_sos("1r1"), 3e3, 0.0, FloatingNode.BIT_LINE)
        assert not obs.is_faulty

    def test_observation_is_cached(self, open4):
        args = (parse_sos("1r1"), 1e7, 0.0, FloatingNode.BIT_LINE)
        assert open4.observe(*args) is open4.observe(*args)

    def test_accepts_node_tuples(self, open4):
        obs = open4.observe(
            parse_sos("1r1"), 1e7, 0.0, (FloatingNode.BIT_LINE,)
        )
        assert obs.ffm is FFM.RDF1


class TestRegionMap:
    def test_region_map_dimensions(self, open4):
        m = open4.region_map(parse_sos("1r1"), FloatingNode.BIT_LINE)
        assert len(m.r_values) == 6
        assert len(m.u_values) == 5

    def test_rdf1_partial(self, open4):
        m = open4.region_map(parse_sos("1r1"), FloatingNode.BIT_LINE)
        assert FFM.RDF1 in m.observed_labels
        assert m.is_partial_label(FFM.RDF1)

    def test_fp_labels(self, open4):
        m = open4.region_map(
            parse_sos("1r1"), FloatingNode.BIT_LINE, label="fp"
        )
        faulty = [l for row in m.labels for l in row if l is not None]
        assert faulty and all(fp.is_faulty() for fp in faulty)

    def test_bad_label_kind_rejected(self, open4):
        with pytest.raises(ValueError):
            open4.region_map(parse_sos("1r1"), FloatingNode.BIT_LINE,
                             label="bogus")


class TestSurvey:
    def test_survey_finds_rdf1(self, open4):
        findings = open4.survey(FloatingNode.BIT_LINE, probes=("1r1",))
        ffms = {f.ffm for f in findings}
        assert FFM.RDF1 in ffms

    def test_survey_default_uses_section2_rules(self):
        analyzer = ColumnFaultAnalyzer(
            OpenLocation.WORD_LINE,
            grid=SweepGrid.make(r_min=1e7, r_max=1e9, n_r=4, n_u=4),
        )
        findings = analyzer.survey(probes=("0",))
        assert all(
            f.floating == (FloatingNode.WORD_LINE,) for f in findings
        )
        assert {f.ffm for f in findings} == {FFM.SF0}

    def test_sweep_plans_single_node(self, open4):
        assert open4.sweep_plans() == ((FloatingNode.BIT_LINE,),)

    def test_sweep_plans_joint_for_open8(self):
        analyzer = ColumnFaultAnalyzer(OpenLocation.BL_SENSEAMP_IO)
        plans = analyzer.sweep_plans()
        assert (FloatingNode.BIT_LINE,) in plans
        assert (FloatingNode.OUTPUT_BUFFER,) in plans
        assert (FloatingNode.BIT_LINE, FloatingNode.OUTPUT_BUFFER) in plans


class TestSemantics:
    def test_cell_sweep_initializes_via_write(self):
        """For cell opens, U is the pre-initialization cell voltage."""
        analyzer = ColumnFaultAnalyzer(
            OpenLocation.CELL,
            grid=SweepGrid.make(r_min=3e4, r_max=1e6, n_r=4, n_u=4),
        )
        # A healthy-resistance cell open at high U: the init w0 succeeds,
        # so 0r0 is benign even though U > the state threshold.
        obs = analyzer.observe(parse_sos("0r0"), 3e4, 3.3, FloatingNode.CELL)
        assert not obs.is_faulty

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            ColumnFaultAnalyzer(OpenLocation.CELL, n_rows=1)

    def test_row_mapping(self, open4):
        assert open4._row_of("v") == open4.victim_row
        assert open4._row_of("BL") != open4.victim_row
