"""Batched U-axis execution agrees with scalar observation, plus the
axis-construction regression (``n < 2`` with ``hi != lo`` must raise)."""

import pytest

from repro.circuit.defects import FloatingNode, OpenLocation
from repro.core.analysis import (
    ColumnFaultAnalyzer,
    SweepGrid,
    _lin_space,
    _log_space,
    default_grid_for,
)
from repro.core.fault_primitives import parse_sos


# -- axis guards (regression: silent (lo,) truncation) -------------------------

@pytest.mark.parametrize("space", [_log_space, _lin_space])
def test_degenerate_axis_raises_instead_of_truncating(space):
    with pytest.raises(ValueError):
        space(1.0, 2.0, 1)
    with pytest.raises(ValueError):
        space(1.0, 2.0, 0)


@pytest.mark.parametrize("space", [_log_space, _lin_space])
def test_single_point_axis_allowed_when_degenerate_range(space):
    assert space(2.0, 2.0, 1) == (2.0,)


def test_axis_endpoints_preserved():
    assert _lin_space(0.0, 3.3, 12)[0] == 0.0
    assert _lin_space(0.0, 3.3, 12)[-1] == pytest.approx(3.3)
    log = _log_space(1e3, 1e6, 7)
    assert log[0] == pytest.approx(1e3)
    assert log[-1] == pytest.approx(1e6)


def test_sweep_grid_make_rejects_collapsed_axis():
    with pytest.raises(ValueError):
        SweepGrid.make(n_r=1)
    with pytest.raises(ValueError):
        SweepGrid.make(n_u=1)


# -- batched vs scalar equivalence ---------------------------------------------

def _label_grid(analyzer, sos, floating, grid):
    return analyzer.region_map(sos, floating, grid=grid).labels


@pytest.mark.parametrize(
    "location,floating,sos_text",
    [
        (OpenLocation.BL_PRECHARGE_CELLS, FloatingNode.BIT_LINE, "1r1"),
        (OpenLocation.CELL, FloatingNode.CELL, "0r0"),
        (OpenLocation.SENSE_AMPLIFIER, FloatingNode.BIT_LINE, "0w1"),
        (OpenLocation.WORD_LINE, FloatingNode.WORD_LINE, "1r1"),
    ],
)
def test_region_map_batch_equals_scalar(location, floating, sos_text):
    grid = default_grid_for(location, n_r=5, n_u=4)
    sos = parse_sos(sos_text)
    scalar = ColumnFaultAnalyzer(location, grid=grid, batch_u=False)
    batched = ColumnFaultAnalyzer(location, grid=grid, batch_u=True)
    assert _label_grid(scalar, sos, floating, grid) == _label_grid(
        batched, sos, floating, grid
    )


def test_observe_batch_returns_cached_and_fresh_points():
    location = OpenLocation.BL_PRECHARGE_CELLS
    grid = default_grid_for(location, n_r=4, n_u=4)
    analyzer = ColumnFaultAnalyzer(location, grid=grid)
    r = grid.r_values[2]
    sos = parse_sos("1r1")
    # Warm one U point the scalar way, then batch the full column.
    warm = analyzer.observe(sos, r, grid.u_values[1], FloatingNode.BIT_LINE)
    column = analyzer.observe_batch(
        sos, r, grid.u_values, FloatingNode.BIT_LINE
    )
    assert column[1] is warm  # cache-resident point returned as-is
    scalar = ColumnFaultAnalyzer(location, grid=grid, batch_u=False)
    for u, obs in zip(grid.u_values, column):
        ref = scalar.observe(sos, r, u, FloatingNode.BIT_LINE)
        assert (obs.fp, obs.ffm, obs.faulty_value, obs.read_value) == (
            ref.fp, ref.ffm, ref.faulty_value, ref.read_value
        )


def test_full_survey_batch_equals_scalar():
    """End to end: findings and regions match for every plan and probe."""
    location = OpenLocation.BL_SENSEAMP_IO
    grid = default_grid_for(location, n_r=4, n_u=3)

    def fingerprint(batch_u):
        analyzer = ColumnFaultAnalyzer(location, grid=grid, batch_u=batch_u)
        return [
            (f.location, f.floating, f.probe_sos, f.ffm, f.region.labels)
            for f in analyzer.survey()
        ]

    assert fingerprint(True) == fingerprint(False)
