"""Unit tests for the complementary-defect transform."""

import pytest

from repro.core.complement import complement
from repro.core.fault_primitives import Init, Op, OpKind, parse_fp, parse_sos
from repro.core.ffm import FFM


class TestComplement:
    def test_bits(self):
        assert complement(0) == 1
        assert complement(1) == 0

    def test_none_passthrough(self):
        assert complement(None) is None

    def test_init(self):
        assert complement(Init(0, "v")) == Init(1, "v")

    def test_op(self):
        assert complement(Op(OpKind.READ, 1)) == Op(OpKind.READ, 0)

    def test_sos(self):
        assert complement(parse_sos("1v [w0BL] r1v")) == parse_sos(
            "0v [w1BL] r0v"
        )

    def test_fp_table1_pair(self):
        """The paper's Com. column: RDF1's completed FP complements to RDF0's."""
        rdf1 = parse_fp("<1v [w0BL] r1v/0/0>")
        assert complement(rdf1) == parse_fp("<0v [w1BL] r0v/1/1>")

    def test_ffm(self):
        assert complement(FFM.RDF0) is FFM.RDF1

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            complement("not a fault object")
        with pytest.raises(TypeError):
            complement(2)

    def test_involution_on_examples(self):
        for text in ("<1r1/0/0>", "<0w1/0/->", "<[w1 w0] r0/1/1>"):
            fp = parse_fp(text)
            assert complement(complement(fp)) == fp
