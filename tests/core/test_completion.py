"""Unit tests for the completing-operation search."""

import pytest

from repro.circuit.defects import FloatingNode, OpenLocation
from repro.core.analysis import ColumnFaultAnalyzer, SweepGrid
from repro.core.completion import candidate_completions, complete_fault
from repro.core.fault_primitives import BITLINE_NEIGHBOR, VICTIM, parse_sos
from repro.core.ffm import FFM


class TestCandidates:
    def test_ordered_by_length(self):
        lengths = [c.n_ops for c in candidate_completions(parse_sos("1r1"), 2)]
        assert lengths == sorted(lengths)

    def test_bitline_candidates_first_of_each_length(self):
        first = next(iter(candidate_completions(parse_sos("1r1"), 1)))
        assert first.ops[0].cell == BITLINE_NEIGHBOR
        assert first.ops[0].completing

    def test_victim_candidates_drop_inits(self):
        candidates = list(candidate_completions(parse_sos("0r0"), 2))
        victim_ones = [
            c for c in candidates
            if any(op.cell == VICTIM and op.completing for op in c.ops)
        ]
        assert victim_ones
        assert all(c.inits == () for c in victim_ones)

    def test_victim_prefix_ends_with_init_value(self):
        for c in candidate_completions(parse_sos("0r0"), 3):
            victim_completing = [
                op for op in c.completing_ops if op.cell == VICTIM
            ]
            if victim_completing:
                assert victim_completing[-1].value == 0

    def test_no_victim_candidates_without_init(self):
        candidates = list(candidate_completions(parse_sos("[w1 w0] r0"), 2))
        # The probe SOS has no victim init left, so only BL prefixes appear.
        new_victims = [
            c for c in candidates
            if len([o for o in c.completing_ops if o.cell == VICTIM]) > 2
        ]
        assert not new_victims

    def test_counts(self):
        # Lengths 1..2 of BL prefixes: 2 + 4; victim prefixes: 1 + 2.
        n = sum(1 for _ in candidate_completions(parse_sos("1r1"), 2))
        assert n == 9

    def test_zero_budget_yields_nothing(self):
        assert list(candidate_completions(parse_sos("1r1"), 0)) == []


@pytest.fixture(scope="module")
def open4():
    return ColumnFaultAnalyzer(
        OpenLocation.BL_PRECHARGE_CELLS,
        grid=SweepGrid.make(r_min=1e4, r_max=1e7, n_r=6, n_u=5),
    )


class TestCompleteFault:
    def test_open4_rdf1_completes_with_w0bl(self, open4):
        finding = next(
            f for f in open4.survey(FloatingNode.BIT_LINE, probes=("1r1",))
            if f.ffm is FFM.RDF1
        )
        outcome = complete_fault(open4, finding, max_extra_ops=1)
        assert outcome.possible
        assert outcome.describe() == "<1v [w0BL] r1v/0/0>"
        assert outcome.r_complete is not None
        assert outcome.completed_region is not None
        assert not outcome.completed_region.is_partial_label(FFM.RDF1)

    def test_completed_fp_classifies_like_partial(self, open4):
        finding = next(
            f for f in open4.survey(FloatingNode.BIT_LINE, probes=("1r1",))
            if f.ffm is FFM.RDF1
        )
        outcome = complete_fault(open4, finding, max_extra_ops=1)
        from repro.core.ffm import classify_fp

        assert classify_fp(outcome.completed_fp) is FFM.RDF1

    def test_word_line_faults_not_possible(self):
        analyzer = ColumnFaultAnalyzer(
            OpenLocation.WORD_LINE,
            grid=SweepGrid.make(r_min=1e7, r_max=1e9, n_r=4, n_u=4),
        )
        findings = [
            f for f in analyzer.survey(probes=("0",)) if f.is_partial
        ]
        assert findings
        outcome = complete_fault(analyzer, findings[0], max_extra_ops=2)
        assert not outcome.possible
        assert outcome.describe() == "Not possible"
        assert outcome.candidates_tried > 0
