"""Unit tests for the two-cell coupling-fault taxonomy."""

import pytest

from repro.core.coupling import (
    AGGRESSOR,
    CouplingFFM,
    canonical_coupling_fp,
    classify_two_cell_fp,
    two_cell_state_probes,
)
from repro.core.fault_primitives import FaultPrimitive, parse_fp, parse_sos


class TestTaxonomy:
    def test_twelve_ffms(self):
        assert len(CouplingFFM) == 12

    def test_canonical_fps_are_faulty(self):
        for ffm in CouplingFFM:
            assert canonical_coupling_fp(ffm).is_faulty()

    def test_canonical_fps_distinct(self):
        fps = {canonical_coupling_fp(f) for f in CouplingFFM}
        assert len(fps) == 12

    def test_complement_is_involution(self):
        for ffm in CouplingFFM:
            assert ffm.complement().complement() is ffm

    def test_complement_flips_both_cells(self):
        assert CouplingFFM.CFST_01.complement() is CouplingFFM.CFST_10
        assert CouplingFFM.CFID_UP_0.complement() is CouplingFFM.CFID_DOWN_1


class TestClassification:
    @pytest.mark.parametrize("ffm", list(CouplingFFM))
    def test_canonical_classifies_to_itself(self, ffm):
        assert classify_two_cell_fp(canonical_coupling_fp(ffm)) is ffm

    def test_cfst_from_string(self):
        fp = parse_fp("<1a 0v/1/->")
        assert classify_two_cell_fp(fp) is CouplingFFM.CFST_10

    def test_cfid_from_string(self):
        fp = parse_fp("<0a 1v w1a/0/->")
        assert classify_two_cell_fp(fp) is CouplingFFM.CFID_UP_1

    def test_cfrd_from_string(self):
        fp = parse_fp("<1a 0v r0v/1/0>")
        assert classify_two_cell_fp(fp) is CouplingFFM.CFRD_10

    def test_single_cell_fp_not_classified(self):
        assert classify_two_cell_fp(parse_fp("<1r1/0/0>")) is None

    def test_non_flip_not_classified(self):
        fp = parse_fp("<1a 0v r0v/0/1>")  # read lies but no flip
        assert classify_two_cell_fp(fp) is None

    def test_non_faulty_not_classified(self):
        fp = FaultPrimitive(parse_sos("1a 0v r0v"), 0, 0)
        assert classify_two_cell_fp(fp) is None

    def test_classification_commutes_with_complement(self):
        for ffm in CouplingFFM:
            fp = canonical_coupling_fp(ffm)
            assert classify_two_cell_fp(fp.complement()) is ffm.complement()


class TestProbes:
    def test_probe_count(self):
        # 4 state pairs x (state, aggressor write, victim read).
        assert len(two_cell_state_probes()) == 12

    def test_probes_reference_both_cells(self):
        for sos in two_cell_state_probes():
            assert sos.init_value(AGGRESSOR) is not None
            assert sos.init_value("v") is not None

    def test_probes_are_consistent(self):
        assert all(sos.is_consistent() for sos in two_cell_state_probes())
