"""Tests for signature-based defect diagnosis."""

import math
import random

import pytest

from repro.circuit.defects import OpenDefect, OpenLocation
from repro.core.analysis import _R_RANGES
from repro.core.diagnosis import (
    EQUIVALENCE_CLASSES,
    SignatureDatabase,
    equivalence_class,
)


@pytest.fixture(scope="module")
def database():
    # A small dictionary over the three headline locations keeps the
    # suite fast; the full database is exercised by the benchmark.
    return SignatureDatabase(
        points_per_decade=2,
        locations=(
            OpenLocation.BL_PRECHARGE_CELLS,
            OpenLocation.CELL,
            OpenLocation.BL_SENSEAMP_IO,
        ),
    )


class TestEquivalenceClasses:
    def test_every_location_classified(self):
        assert set(EQUIVALENCE_CLASSES) == set(OpenLocation)

    def test_bitline_opens_share_a_class(self):
        assert (
            equivalence_class(OpenLocation.PRECHARGE)
            == equivalence_class(OpenLocation.BL_PRECHARGE_CELLS)
            == equivalence_class(OpenLocation.BL_CELLS_REFERENCE)
        )

    def test_cell_and_word_line_share_a_class(self):
        assert (
            equivalence_class(OpenLocation.CELL)
            == equivalence_class(OpenLocation.WORD_LINE)
        )

    def test_forwarding_is_distinct(self):
        assert equivalence_class(OpenLocation.BL_SENSEAMP_IO) not in (
            equivalence_class(OpenLocation.CELL),
            equivalence_class(OpenLocation.PRECHARGE),
        )


class TestSignatures:
    def test_healthy_device_has_empty_signature(self, database):
        assert database.signature_of(None) == frozenset()
        assert database.diagnose_defect(None).healthy

    def test_database_nonempty(self, database):
        assert database.size >= 6

    def test_signature_is_deterministic(self, database):
        defect = OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e6)
        assert database.signature_of(defect) == database.signature_of(defect)

    def test_strong_defect_has_a_signature(self, database):
        defect = OpenDefect(OpenLocation.CELL, 5e5)
        assert database.signature_of(defect)


class TestDiagnosis:
    @pytest.mark.parametrize("location,resistance", [
        (OpenLocation.BL_PRECHARGE_CELLS, 4e5),
        (OpenLocation.CELL, 3e5),
        (OpenLocation.BL_SENSEAMP_IO, 2e8),
    ])
    def test_off_grid_defects_diagnose_to_their_class(
        self, database, location, resistance
    ):
        result = database.diagnose_defect(OpenDefect(location, resistance))
        assert not result.healthy
        assert result.best is not None
        # Exact similarity ties are physically meaningful (a fully
        # disconnected forwarding open fails like a floating bit line),
        # so the truth must be among the tied-best classes.
        assert equivalence_class(location) in result.top_classes

    def test_candidates_ranked_by_similarity(self, database):
        result = database.diagnose_defect(
            OpenDefect(OpenLocation.CELL, 3e5)
        )
        sims = [c.similarity for c in result.candidates]
        assert sims == sorted(sims, reverse=True)

    def test_resistance_range_brackets_truth(self, database):
        resistance = 3e5
        result = database.diagnose_defect(
            OpenDefect(OpenLocation.CELL, resistance)
        )
        best = result.best
        assert best.r_min <= resistance * 10
        assert best.r_max >= resistance / 10

    def test_empty_signature_diagnoses_nothing(self, database):
        result = database.diagnose(frozenset())
        assert result.healthy and result.best is None
