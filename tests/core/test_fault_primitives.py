"""Unit tests for the fault-primitive notation layer."""

import pytest

from repro.core.fault_primitives import (
    BITLINE_NEIGHBOR,
    FaultPrimitive,
    Init,
    NotationError,
    Op,
    OpKind,
    SOS,
    VICTIM,
    cumulative_single_cell_fp_count,
    enumerate_single_cell_fps,
    enumerate_single_cell_sos,
    parse_fp,
    parse_sos,
    single_cell_fp_count,
)


class TestOpAndInit:
    def test_op_requires_binary_value(self):
        with pytest.raises(ValueError):
            Op(OpKind.WRITE, 2)

    def test_init_requires_binary_value(self):
        with pytest.raises(ValueError):
            Init(3)

    def test_op_complement_flips_value(self):
        assert Op(OpKind.WRITE, 1).complement() == Op(OpKind.WRITE, 0)

    def test_op_complement_preserves_cell_and_flag(self):
        op = Op(OpKind.READ, 0, BITLINE_NEIGHBOR, completing=True)
        comp = op.complement()
        assert comp.cell == BITLINE_NEIGHBOR
        assert comp.completing
        assert comp.value == 1

    def test_op_string_victim_implicit(self):
        assert str(Op(OpKind.WRITE, 1)) == "w1"

    def test_op_string_with_subscript(self):
        assert str(Op(OpKind.WRITE, 0, "BL")) == "w0BL"

    def test_init_string(self):
        assert str(Init(0)) == "0"
        assert str(Init(1, "a")) == "1a"

    def test_empty_cell_label_rejected(self):
        with pytest.raises(ValueError):
            Op(OpKind.READ, 0, "")

    def test_as_completing(self):
        op = Op(OpKind.WRITE, 1)
        assert op.as_completing().completing
        assert not op.as_completing(False).completing


class TestSOSParsing:
    def test_compact_read(self):
        sos = parse_sos("1r1")
        assert sos.inits == (Init(1),)
        assert sos.ops == (Op(OpKind.READ, 1),)

    def test_compact_write(self):
        sos = parse_sos("0w1")
        assert sos.inits == (Init(0),)
        assert sos.ops == (Op(OpKind.WRITE, 1),)

    def test_state_only(self):
        sos = parse_sos("0")
        assert sos.inits == (Init(0),)
        assert sos.ops == ()

    def test_empty(self):
        assert parse_sos("") == SOS()

    def test_completing_brackets(self):
        sos = parse_sos("1v [w0BL] r1v")
        assert sos.inits == (Init(1, VICTIM),)
        assert sos.ops == (
            Op(OpKind.WRITE, 0, BITLINE_NEIGHBOR, completing=True),
            Op(OpKind.READ, 1, VICTIM),
        )

    def test_victim_completing_prefix(self):
        sos = parse_sos("[w1 w1 w0] r0")
        assert sos.inits == ()
        assert [op.completing for op in sos.ops] == [True, True, True, False]

    def test_underscore_subscripts(self):
        sos = parse_sos("1_v [w0_BL] r1_v")
        assert sos == parse_sos("1v [w0BL] r1v")

    def test_multi_cell_example(self):
        sos = parse_sos("0a 0v w1a r1a r0v")
        assert sos.n_cells == 2
        assert sos.n_ops == 3

    def test_nested_brackets_rejected(self):
        with pytest.raises(NotationError):
            parse_sos("[[w0] w1] r1")

    def test_unbalanced_brackets_rejected(self):
        with pytest.raises(NotationError):
            parse_sos("[w0 r1")
        with pytest.raises(NotationError):
            parse_sos("w0] r1")

    def test_init_after_operation_rejected(self):
        with pytest.raises(NotationError):
            parse_sos("w1v 0v r1v")

    def test_init_inside_brackets_rejected(self):
        with pytest.raises(NotationError):
            parse_sos("[0 w1] r1")

    def test_garbage_rejected(self):
        with pytest.raises(NotationError):
            parse_sos("xyz")

    def test_compact_missing_value_rejected(self):
        with pytest.raises(NotationError):
            parse_sos("0w")

    def test_duplicate_init_rejected(self):
        with pytest.raises(ValueError):
            SOS((Init(0), Init(1)), ())


class TestSOSSemantics:
    def test_metrics_single_cell(self):
        sos = parse_sos("1r1")
        assert sos.n_cells == 1
        assert sos.n_ops == 1

    def test_metrics_count_completing_ops(self):
        sos = parse_sos("1v [w0BL] r1v")
        assert sos.n_cells == 2
        assert sos.n_ops == 2

    def test_metrics_victim_completion(self):
        sos = parse_sos("[w1 w1 w0] r0")
        assert sos.n_cells == 1
        assert sos.n_ops == 4

    def test_expected_final_state_tracks_writes(self):
        assert parse_sos("0w1").expected_final_state() == 1
        assert parse_sos("1w0").expected_final_state() == 0
        assert parse_sos("1r1").expected_final_state() == 1

    def test_expected_state_from_completing_prefix(self):
        assert parse_sos("[w1 w1 w0] r0").expected_final_state() == 0

    def test_ends_in_read(self):
        assert parse_sos("1r1").ends_in_read
        assert not parse_sos("0w1").ends_in_read
        assert not parse_sos("0").ends_in_read

    def test_ends_in_read_requires_victim(self):
        sos = parse_sos("1v [w0BL] r1v")
        assert sos.ends_in_read

    def test_consistency_accepts_fault_free_reads(self):
        assert parse_sos("1r1").is_consistent()
        assert parse_sos("[w1 w1 w0] r0").is_consistent()

    def test_consistency_rejects_wrong_read(self):
        sos = SOS((Init(0),), (Op(OpKind.READ, 1),))
        assert not sos.is_consistent()

    def test_complement_is_involution(self):
        sos = parse_sos("1v [w0BL] r1v")
        assert sos.complement().complement() == sos

    def test_without_completing_ops(self):
        sos = parse_sos("1v [w0BL] r1v")
        assert sos.without_completing_ops() == parse_sos("1r1")

    def test_with_prefix_keeps_inits(self):
        sos = parse_sos("1r1")
        extended = sos.with_prefix((Op(OpKind.WRITE, 0, BITLINE_NEIGHBOR),))
        assert extended.init_value() == 1
        assert extended.ops[0].completing

    def test_with_prefix_drop_inits(self):
        sos = parse_sos("0r0")
        extended = sos.with_prefix(
            (Op(OpKind.WRITE, 1), Op(OpKind.WRITE, 0)), drop_inits=True
        )
        assert extended.inits == ()
        assert extended.n_ops == 3

    def test_cells_victim_first(self):
        sos = parse_sos("0a 0v w1a r0v")
        assert sos.cells[0] == VICTIM

    def test_string_roundtrip_simple(self):
        for text in ("1r1", "0w1", "0", "1w0"):
            assert str(parse_sos(text)).replace(" ", "") == text

    def test_string_roundtrip_completed(self):
        sos = parse_sos("1v [w0BL] r1v")
        assert parse_sos(str(sos)) == sos


class TestFaultPrimitive:
    def test_parse_simple(self):
        fp = parse_fp("<1r1/0/0>")
        assert fp.faulty_value == 0
        assert fp.read_value == 0

    def test_parse_no_read(self):
        fp = parse_fp("<0w1/0/->")
        assert fp.read_value is None

    def test_parse_completed(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        assert fp.is_completed
        assert fp.n_cells == 2 and fp.n_ops == 2

    def test_read_value_requires_trailing_read(self):
        with pytest.raises(ValueError):
            FaultPrimitive(parse_sos("0w1"), 0, read_value=1)

    def test_trailing_read_requires_read_value(self):
        with pytest.raises(ValueError):
            FaultPrimitive(parse_sos("1r1"), 0, read_value=None)

    def test_is_faulty_state_deviation(self):
        assert parse_fp("<0w1/0/->").is_faulty()

    def test_is_faulty_read_deviation(self):
        assert parse_fp("<0r0/0/1>").is_faulty()

    def test_not_faulty(self):
        fp = FaultPrimitive(parse_sos("1r1"), 1, 1)
        assert not fp.is_faulty()

    def test_complement(self):
        fp = parse_fp("<1r1/0/0>")
        assert fp.complement() == parse_fp("<0r0/1/1>")

    def test_complement_involution(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        assert fp.complement().complement() == fp

    def test_partial_counterpart(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        assert fp.partial_counterpart() == parse_fp("<1r1/0/0>")

    def test_expected_value(self):
        assert parse_fp("<0w1/0/->").expected_value == 1
        assert parse_fp("<1r1/0/0>").expected_value == 1

    def test_string_roundtrip(self):
        for text in ("<1r1/0/0>", "<0w1/0/->", "<1v [w0BL] r1v/0/0>",
                     "<[w1 w1 w0] r0/1/1>", "<0/1/->"):
            assert parse_fp(str(parse_fp(text))) == parse_fp(text)

    def test_parse_rejects_missing_brackets(self):
        with pytest.raises(NotationError):
            parse_fp("1r1/0/0")

    def test_parse_rejects_bad_faulty_value(self):
        with pytest.raises(NotationError):
            parse_fp("<1r1/2/0>")

    def test_parse_rejects_bad_read_value(self):
        with pytest.raises(NotationError):
            parse_fp("<1r1/0/x>")

    def test_parse_rejects_inconsistent_r(self):
        with pytest.raises(NotationError):
            parse_fp("<0w1/0/1>")


class TestEnumeration:
    def test_sos_count(self):
        for k in range(4):
            assert sum(1 for _ in enumerate_single_cell_sos(k)) == 2 * 3 ** k

    def test_sos_are_consistent(self):
        assert all(s.is_consistent() for s in enumerate_single_cell_sos(3))

    def test_fp_count_formula_matches_enumeration(self):
        for k in range(4):
            assert (
                sum(1 for _ in enumerate_single_cell_fps(k))
                == single_cell_fp_count(k)
            )

    def test_state_fault_count(self):
        assert single_cell_fp_count(0) == 2

    def test_one_op_count(self):
        assert single_cell_fp_count(1) == 10

    def test_paper_anchor_twelve(self):
        assert cumulative_single_cell_fp_count(1) == 12

    def test_cumulative_to_four(self):
        assert cumulative_single_cell_fp_count(4) == 402

    def test_all_enumerated_fps_are_faulty(self):
        assert all(fp.is_faulty() for fp in enumerate_single_cell_fps(2))

    def test_enumerated_fps_unique(self):
        fps = list(enumerate_single_cell_fps(2))
        assert len(fps) == len(set(fps))

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            single_cell_fp_count(-1)
        with pytest.raises(ValueError):
            list(enumerate_single_cell_sos(-1))
