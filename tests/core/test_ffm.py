"""Unit tests for the FFM taxonomy and FP classification."""

import pytest

from repro.core.fault_primitives import FaultPrimitive, parse_fp, parse_sos
from repro.core.ffm import ALL_SINGLE_CELL_FFMS, FFM, canonical_fp, classify_fp


class TestTaxonomy:
    def test_twelve_ffms(self):
        assert len(ALL_SINGLE_CELL_FFMS) == 12

    def test_canonical_fps_are_faulty(self):
        for ffm in FFM:
            assert canonical_fp(ffm).is_faulty()

    def test_canonical_fps_distinct(self):
        fps = {canonical_fp(ffm) for ffm in FFM}
        assert len(fps) == 12

    def test_complement_pairs(self):
        assert FFM.RDF0.complement() is FFM.RDF1
        assert FFM.TF_UP.complement() is FFM.TF_DOWN
        assert FFM.SF1.complement() is FFM.SF0
        assert FFM.WDF0.complement() is FFM.WDF1
        assert FFM.DRDF1.complement() is FFM.DRDF0
        assert FFM.IRF0.complement() is FFM.IRF1

    def test_complement_is_involution(self):
        for ffm in FFM:
            assert ffm.complement().complement() is ffm


class TestClassification:
    @pytest.mark.parametrize("ffm", list(FFM))
    def test_canonical_classifies_to_itself(self, ffm):
        assert classify_fp(canonical_fp(ffm)) is ffm

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("<1r1/0/0>", FFM.RDF1),
            ("<0r0/1/1>", FFM.RDF0),
            ("<0r0/1/0>", FFM.DRDF0),
            ("<1r1/0/1>", FFM.DRDF1),
            ("<0r0/0/1>", FFM.IRF0),
            ("<1r1/1/0>", FFM.IRF1),
            ("<0w1/0/->", FFM.TF_UP),
            ("<1w0/1/->", FFM.TF_DOWN),
            ("<0w0/1/->", FFM.WDF0),
            ("<1w1/0/->", FFM.WDF1),
            ("<0/1/->", FFM.SF0),
            ("<1/0/->", FFM.SF1),
        ],
    )
    def test_simple_fps(self, text, expected):
        assert classify_fp(parse_fp(text)) is expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("<1v [w0BL] r1v/0/0>", FFM.RDF1),
            ("<0v [w1BL] r0v/1/1>", FFM.RDF0),
            ("<1v [w0BL] r1v/1/0>", FFM.IRF1),
            ("<0v [w1BL] r0v/0/1>", FFM.IRF0),
            ("<1v [w1BL] w0v/1/->", FFM.TF_DOWN),
            ("<0v [w1BL] w0v/1/->", FFM.WDF0),
            ("<[w1 w1 w0] r0/1/1>", FFM.RDF0),
            ("<[w1 w0] r0/1/1>", FFM.RDF0),
            ("<[w0 w1] r1/0/0>", FFM.RDF1),
        ],
    )
    def test_completed_fps_classify_by_victim_behaviour(self, text, expected):
        assert classify_fp(parse_fp(text)) is expected

    def test_non_faulty_classifies_none(self):
        fp = FaultPrimitive(parse_sos("1r1"), 1, 1)
        assert classify_fp(fp) is None

    def test_multi_op_victim_sos_not_classified(self):
        fp = parse_fp("<0w1 r1/0/0>")
        assert classify_fp(fp) is None

    def test_complement_consistency(self):
        for ffm in FFM:
            fp = canonical_fp(ffm)
            assert classify_fp(fp.complement()) is ffm.complement()
