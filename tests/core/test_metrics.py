"""Unit tests for the #C/#O metrics and the partial-completed relations."""

import pytest

from repro.core.fault_primitives import parse_fp, parse_sos
from repro.core.metrics import (
    SOSMetrics,
    check_completion_relations,
    metrics_of,
    satisfied_relations,
)


class TestMetrics:
    def test_paper_worked_example(self):
        """S = 0_a 0_v w1_a r1_a r0_v: #C = 2, #O = 3 (Section 4)."""
        m = metrics_of(parse_sos("0a 0v w1a r1a r0v"))
        assert m == SOSMetrics(n_cells=2, n_ops=3)

    def test_single_cell_read(self):
        assert metrics_of(parse_sos("1r1")) == SOSMetrics(1, 1)

    def test_state_only(self):
        assert metrics_of(parse_sos("0")) == SOSMetrics(1, 0)

    def test_completing_ops_count(self):
        assert metrics_of(parse_sos("1v [w0BL] r1v")) == SOSMetrics(2, 2)

    def test_victim_completion_counts_cells_once(self):
        assert metrics_of(parse_sos("[w1 w1 w0] r0")) == SOSMetrics(1, 4)

    def test_accepts_fault_primitives(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        assert metrics_of(fp) == SOSMetrics(2, 2)

    def test_metrics_ordering(self):
        assert SOSMetrics(1, 1) < SOSMetrics(2, 2)

    def test_str(self):
        assert str(SOSMetrics(2, 3)) == "#C=2, #O=3"


class TestRelations:
    def test_open4_example_satisfies_all(self):
        """Paper: RDF1 (#C=1,#O=1) -> completed (#C=2,#O=2): relation 3."""
        partial = parse_fp("<1r1/0/0>")
        completed = parse_fp("<1v [w0BL] r1v/0/0>")
        assert satisfied_relations(partial, completed) == (1, 2, 3)

    def test_cell_open_completion(self):
        partial = parse_fp("<0r0/1/1>")
        completed = parse_fp("<[w1 w1 w0] r0/1/1>")
        relations = satisfied_relations(partial, completed)
        assert 2 in relations  # #O grows 1 -> 4
        assert 3 in relations  # #C equal, #O grows

    def test_relation_one_only(self):
        more_cells = parse_sos("0a 0v r0v")
        fewer_ops = parse_sos("0v w1v r1v")
        assert satisfied_relations(fewer_ops, more_cells) == (1,)

    def test_relation_two_only(self):
        partial = parse_sos("0a 0v r0v")       # C=2, O=1
        completed = parse_sos("w1 w0 r0")      # C=1, O=3
        assert satisfied_relations(partial, completed) == (2,)

    def test_no_relation(self):
        big = parse_sos("0a 0v w1a r0v")       # C=2, O=2
        small = parse_sos("0")                 # C=1, O=0
        assert satisfied_relations(big, small) == ()
        assert not check_completion_relations(big, small)

    def test_check_completion_relations_true(self):
        partial = parse_fp("<1r1/0/0>")
        completed = parse_fp("<1v [w0BL] r1v/0/0>")
        assert check_completion_relations(partial, completed)

    def test_equal_metrics_satisfy_everything(self):
        sos = parse_sos("1r1")
        assert satisfied_relations(sos, sos) == (1, 2, 3)
