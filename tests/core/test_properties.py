"""Property-based tests (hypothesis) on the fault-model core."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.complement import complement
from repro.core.fault_primitives import (
    BITLINE_NEIGHBOR,
    FaultPrimitive,
    Init,
    Op,
    OpKind,
    SOS,
    VICTIM,
    enumerate_single_cell_fps,
    parse_fp,
    parse_sos,
    single_cell_fp_count,
)
from repro.core.ffm import classify_fp
from repro.core.metrics import check_completion_relations, metrics_of

bits = st.sampled_from((0, 1))
cells = st.sampled_from((VICTIM, BITLINE_NEIGHBOR, "a"))
op_kinds = st.sampled_from((OpKind.READ, OpKind.WRITE))


@st.composite
def operations(draw, completing=st.booleans()):
    return Op(draw(op_kinds), draw(bits), draw(cells), draw(completing))


@st.composite
def soses(draw):
    """Random well-formed SOSes (unique init cells, ops in any order)."""
    init_cells = draw(st.lists(cells, unique=True, max_size=3))
    inits = tuple(Init(draw(bits), c) for c in init_cells)
    n_ops = draw(st.integers(0, 5))
    ops = tuple(draw(operations()) for _ in range(n_ops))
    return SOS(inits, ops)


@st.composite
def fault_primitives(draw):
    sos = draw(soses())
    faulty = draw(bits)
    read = draw(bits) if sos.ends_in_read else None
    return FaultPrimitive(sos, faulty, read)


@given(soses())
def test_sos_string_roundtrip(sos):
    assert parse_sos(sos.to_string()) == sos


@given(fault_primitives())
def test_fp_string_roundtrip(fp):
    assert parse_fp(fp.to_string()) == fp


@given(fault_primitives())
def test_complement_is_involution(fp):
    assert complement(complement(fp)) == fp


@given(fault_primitives())
def test_complement_preserves_metrics(fp):
    assert metrics_of(fp) == metrics_of(fp.complement())


@given(fault_primitives())
def test_complement_preserves_faultiness(fp):
    assert fp.is_faulty() == fp.complement().is_faulty()


@given(soses())
def test_metrics_bounds(sos):
    m = metrics_of(sos)
    assert 0 <= m.n_cells <= 3
    assert m.n_ops == len(sos.ops)


@given(soses())
def test_without_completing_ops_never_grows(sos):
    stripped = sos.without_completing_ops()
    assert stripped.n_ops <= sos.n_ops
    assert stripped.n_cells <= sos.n_cells


@given(soses(), st.lists(st.tuples(bits), min_size=1, max_size=3))
def test_with_prefix_satisfies_relations(sos, values):
    """Adding completing operations always satisfies relations 1-3."""
    prefix = tuple(Op(OpKind.WRITE, v[0], BITLINE_NEIGHBOR) for v in values)
    extended = sos.with_prefix(prefix)
    assert check_completion_relations(sos, extended)


@given(st.integers(0, 5))
def test_fp_count_closed_form(k):
    expected = 2 if k == 0 else 10 * 3 ** (k - 1)
    assert single_cell_fp_count(k) == expected


@settings(max_examples=20)
@given(st.integers(0, 3))
def test_enumeration_matches_formula(k):
    assert sum(1 for _ in enumerate_single_cell_fps(k)) == single_cell_fp_count(k)


@settings(max_examples=30)
@given(st.integers(0, 1))
def test_classification_total_on_taxonomy_space(k):
    """Every FP with #O <= 1 classifies into exactly one FFM."""
    for fp in enumerate_single_cell_fps(k):
        assert classify_fp(fp) is not None


@given(fault_primitives())
def test_classification_commutes_with_complement(fp):
    ffm = classify_fp(fp)
    comp = classify_fp(fp.complement())
    if ffm is None:
        assert comp is None
    else:
        assert comp is ffm.complement()
