"""Unit tests for FP region maps and the partial-fault rule."""

import pytest

from repro.core.regions import FPRegionMap


def make_map(labels, r=None, u=None):
    r = r or tuple(float(10 ** (3 + i)) for i in range(len(labels)))
    u = u or tuple(float(i) for i in range(len(labels[0])))
    return FPRegionMap(r, u, tuple(tuple(row) for row in labels))


class TestConstruction:
    def test_from_function(self):
        m = FPRegionMap.from_function(
            (1.0, 2.0), (0.0, 1.0), lambda r, v: "F" if r > 1.5 else None
        )
        assert m.labels == ((None, None), ("F", "F"))

    def test_rejects_unsorted_r(self):
        with pytest.raises(ValueError):
            FPRegionMap((2.0, 1.0), (0.0,), ((None,), (None,)))

    def test_rejects_unsorted_u(self):
        with pytest.raises(ValueError):
            FPRegionMap((1.0,), (1.0, 0.0), ((None, None),))

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            FPRegionMap((1.0, 2.0), (0.0,), ((None,),))
        with pytest.raises(ValueError):
            FPRegionMap((1.0,), (0.0, 1.0), ((None,),))

    def test_label_at_snaps_to_grid(self):
        m = make_map([["A", None], [None, "B"]])
        assert m.label_at(1e3, 0.1) == "A"
        assert m.label_at(1e4, 0.9) == "B"


class TestQueries:
    def test_observed_labels_in_order(self):
        m = make_map([["A", None], ["B", "A"]])
        assert m.observed_labels == ("A", "B")

    def test_fault_fraction(self):
        m = make_map([["A", None], ["A", "A"]])
        assert m.fault_fraction() == pytest.approx(0.75)
        assert m.fault_fraction("A") == pytest.approx(0.75)
        assert m.fault_fraction("B") == 0.0

    def test_u_extent(self):
        m = make_map([[None, "A", None], [None, "A", "A"]])
        assert m.u_extent("A") == (1.0, 2.0)
        assert m.u_extent("B") is None

    def test_max_fault_voltage(self):
        m = make_map([["A", "A", None], ["A", None, None]])
        assert m.max_fault_voltage("A") == 1.0


class TestPartialRule:
    def test_partial_when_u_subset(self):
        m = make_map([["A", None], ["A", None]])
        assert m.is_partial_label("A")

    def test_not_partial_when_full_rows(self):
        m = make_map([[None, None], ["A", "A"]])
        assert not m.is_partial_label("A")

    def test_mixed_rows_is_partial(self):
        m = make_map([["A", None], ["A", "A"]])
        assert m.is_partial_label("A")

    def test_unknown_label_raises(self):
        m = make_map([[None, None], [None, None]])
        with pytest.raises(ValueError):
            m.is_partial_label("A")

    def test_u_independent(self):
        m = make_map([[None, None], ["A", "A"]])
        assert m.is_u_independent("A")

    def test_not_u_independent(self):
        m = make_map([["A", None], ["A", None]])
        assert not m.is_u_independent("A")


class TestThresholds:
    def test_threshold_resistance(self):
        m = make_map([[None, None], ["A", None], ["A", "A"]])
        assert m.threshold_resistance("A", 0.0) == 1e4
        assert m.threshold_resistance("A", 1.0) == 1e5

    def test_threshold_none_when_absent(self):
        m = make_map([[None, None], [None, None]])
        assert m.threshold_resistance("A", 0.0) is None

    def test_threshold_curve(self):
        m = make_map([["A", None], ["A", "A"]])
        curve = m.threshold_curve("A")
        assert curve[0.0] == 1e3
        assert curve[1.0] == 1e4


class TestRendering:
    def test_render_contains_legend_and_grid(self):
        m = make_map([["A", None], ["A", "A"]])
        text = m.render_ascii({"A": "X"})
        assert "X=A" in text
        assert "XX" in text
        assert "U: 0 .. 1" in text

    def test_render_assigns_letters(self):
        m = make_map([["x", "y"], [None, None]])
        text = m.render_ascii()
        assert "A=x" in text and "B=y" in text


class TestQuarantineLabels:
    def test_quarantined_points_coordinates(self):
        from repro.core.regions import QUARANTINED

        m = make_map([["A", QUARANTINED], [None, "A"]])
        assert m.quarantined_points() == ((1e3, 1.0),)

    def test_fault_fraction_excludes_quarantined(self):
        from repro.core.regions import QUARANTINED

        m = make_map([["A", QUARANTINED], [None, None]])
        assert m.fault_fraction() == 0.25  # only the real fault counts
        assert m.fault_fraction(QUARANTINED) == 0.25  # explicit label works

    def test_partial_area_fraction_excludes_quarantined(self):
        from repro.core.regions import QUARANTINED

        # Without the exclusion the QUARANTINED cell would fill the row
        # and make the union look U-independent.
        m = make_map([["A", QUARANTINED], ["A", "A"]])
        assert m.partial_area_fraction() == 1 / 3

    def test_special_label_pickles_by_identity(self):
        import pickle

        from repro.core.regions import QUARANTINED

        assert pickle.loads(pickle.dumps(QUARANTINED)) is QUARANTINED


class TestBoundaryPoints:
    def test_interior_points_are_not_boundary(self):
        m = make_map([
            ["A", "A", "A"],
            ["A", "A", "A"],
            ["A", "A", None],
        ])
        edge = set(m.boundary_points("A"))
        assert (2, 2) not in edge  # not labelled A
        assert edge == {(1, 2), (2, 1)}  # orthogonal neighbours of the hole
        assert (1, 1) not in edge  # only diagonal contact — interior
        assert (0, 0) not in edge  # all in-bounds neighbours are A

    def test_full_grid_region_has_no_boundary(self):
        m = make_map([["A", "A"], ["A", "A"]])
        assert m.boundary_points("A") == ()
