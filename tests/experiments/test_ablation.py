"""Tests for the ablation experiment (coarse grids)."""

import pytest

from repro.experiments.ablation import run_ablation


@pytest.fixture(scope="module")
def result():
    return run_ablation(n_r=8, n_u=6)


class TestAblation:
    def test_all_claims_hold(self, result):
        assert result.report.all_hold, result.report.render()

    def test_all_four_knobs_swept(self, result):
        assert set(result.rows) == {
            "capacitance", "t_share", "sa_offset", "depth"
        }

    def test_depth_one_completes_fig3(self, result):
        assert result.rows["depth"]
        assert result.rows["depth"][0][2] != "Not possible"

    def test_candidate_counts_grow(self, result):
        counts = [row[1] for row in result.rows["depth"]]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]
