"""Tests for the bridge experiment (coarse grids) and the bridge analyzer."""

import pytest

from repro.circuit.bridges import BridgeLocation
from repro.circuit.defects import FloatingNode
from repro.core.analysis import SweepGrid
from repro.core.bridge_analysis import BridgeFaultAnalyzer, default_bridge_grid
from repro.core.fault_primitives import parse_sos
from repro.experiments.bridges import run_bridges


class TestBridgeAnalyzer:
    @pytest.fixture(scope="class")
    def analyzer(self):
        return BridgeFaultAnalyzer(
            BridgeLocation.CELL_CELL,
            grid=SweepGrid.make(r_min=1e3, r_max=1e8, n_r=6, n_u=4),
        )

    def test_strong_bridge_couples_states(self, analyzer):
        label = analyzer.observe(
            parse_sos("1a 0v"), 1e4, 0.0, FloatingNode.BIT_LINE
        )
        assert label is not None
        assert str(label).startswith("CFst")

    def test_weak_bridge_is_benign(self, analyzer):
        label = analyzer.observe(
            parse_sos("1a 0v"), 1e8, 0.0, FloatingNode.BIT_LINE
        )
        assert label is None

    def test_survey_finds_coupling(self, analyzer):
        findings = analyzer.survey(FloatingNode.BIT_LINE)
        names = {str(f.ffm) for f in findings}
        assert any(n.startswith("CF") for n in names)

    def test_fault_regions_not_partial(self, analyzer):
        for finding in analyzer.survey(FloatingNode.BIT_LINE):
            assert finding.region.partial_area_fraction() <= 0.35

    def test_aggressor_maps_to_partner_row(self, analyzer):
        assert analyzer._row_of("a") == analyzer.victim_row + 1

    def test_needs_partner_row(self):
        with pytest.raises(ValueError):
            BridgeFaultAnalyzer(BridgeLocation.CELL_CELL, n_rows=1)

    def test_default_grid(self):
        grid = default_bridge_grid(n_r=5, n_u=4)
        assert len(grid.r_values) == 5


@pytest.mark.slow
class TestBridgeExperiment:
    def test_all_claims_hold(self):
        result = run_bridges(n_r=8, n_u=5)
        assert result.report.all_hold, result.report.render()
        assert result.open_partial_fraction > result.max_bridge_partial_fraction
