"""Tests for the escape analysis (small populations)."""

import pytest

from repro.circuit.defects import OpenLocation
from repro.experiments.escapes import _screen, run_escapes, sample_defects
from repro.march.library import MARCH_PF_PLUS, MATS_PLUS


class TestSampling:
    def test_deterministic_with_seed(self):
        assert sample_defects(10, seed=1) == sample_defects(10, seed=1)

    def test_respects_location_ranges(self):
        from repro.core.analysis import _R_RANGES

        for defect in sample_defects(50, seed=3):
            lo, hi = _R_RANGES[defect.location]
            assert lo <= defect.resistance <= hi

    def test_location_filter(self):
        defects = sample_defects(
            8, seed=2, locations=(OpenLocation.CELL,)
        )
        assert all(d.location is OpenLocation.CELL for d in defects)


class TestScreening:
    def test_strong_open_is_flagged(self):
        from repro.circuit.defects import OpenDefect

        defect = OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e6)
        assert _screen(MARCH_PF_PLUS, defect, 0.0, None, 3)

    def test_healthy_range_passes(self):
        from repro.circuit.defects import OpenDefect

        defect = OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 3e3)
        assert not _screen(MATS_PLUS, defect, 0.0, None, 3)


@pytest.mark.slow
class TestExperiment:
    def test_small_population(self):
        result = run_escapes(n_defects=30, seed=7)
        assert result.escape_rates["March PF+"] <= 0.05
        assert result.field_failures >= 5
