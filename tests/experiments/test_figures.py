"""Tests for the Fig. 3 / Fig. 4 experiment harnesses (coarse grids)."""

import pytest

from repro.core.ffm import FFM
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(n_r=10, n_u=8)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(n_r=12, n_u=8)


class TestFig3:
    def test_all_claims_hold(self, fig3):
        assert fig3.report.all_hold, fig3.report.render()

    def test_rdf1_is_partial(self, fig3):
        assert fig3.partial_map.is_partial_label(FFM.RDF1)

    def test_fault_only_at_low_voltage(self, fig3):
        assert fig3.max_fault_voltage is not None
        assert fig3.max_fault_voltage < 2.5

    def test_completed_map_u_independent(self, fig3):
        assert fig3.completed_map.is_u_independent(FFM.RDF1)
        assert not fig3.completed_map.is_partial_label(FFM.RDF1)

    def test_report_renders(self, fig3):
        text = fig3.report.render()
        assert "Figure 3" in text and "RDF1" in text


class TestFig4:
    def test_all_claims_hold(self, fig4):
        assert fig4.report.all_hold, fig4.report.render()

    def test_threshold_monotone_in_u(self, fig4):
        assert fig4.r_at_high_u is not None
        if fig4.r_at_low_u is not None:
            assert fig4.r_at_high_u < fig4.r_at_low_u

    def test_threshold_ratio_order_of_the_papers(self, fig4):
        """Paper: 300k/150k = 2x between U=0 and U=1.6."""
        if fig4.r_at_low_u is not None:
            ratio = fig4.r_at_low_u / fig4.r_at_high_u
            assert 1.2 < ratio < 4.0

    def test_completed_flat(self, fig4):
        assert fig4.r_completed is not None
        assert fig4.completed_map.is_u_independent(FFM.RDF0)
