"""Tests for the Section 4 numbers experiment."""

from repro.experiments.fp_space import run_fp_space


class TestFPSpace:
    def test_all_claims_hold(self):
        result = run_fp_space(max_ops=3)
        assert result.report.all_hold, result.report.render()

    def test_counts(self):
        result = run_fp_space(max_ops=4)
        assert result.counts == {0: 2, 1: 10, 2: 30, 3: 90, 4: 270}

    def test_report_mentions_anchor(self):
        result = run_fp_space(max_ops=2)
        assert "12" in result.report.render()
