"""Tests for the march-test experiment harness."""

import pytest

from repro.circuit.defects import OpenLocation
from repro.experiments.march_pf import (
    completed_fault_set,
    electrical_detection,
    run_march_pf,
)
from repro.march.library import MARCH_PF_PLUS, MATS_PLUS, SCAN
from repro.memory.array import Topology


class TestCompletedFaultSet:
    def test_sim_plus_com(self):
        faults = completed_fault_set()
        assert len(faults) == 18

    def test_contains_both_polarities(self):
        texts = {fp.to_string() for fp in completed_fault_set()}
        assert "<1v [w0BL] r1v/0/0>" in texts
        assert "<0v [w1BL] r0v/1/1>" in texts


class TestBehaviouralComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_march_pf(
            tests=(SCAN, MATS_PLUS, MARCH_PF_PLUS),
            topology=Topology(3, 2),
            with_generator=False,
            with_electrical=False,
        )

    def test_march_pf_plus_covers_all(self, result):
        assert result.matrix.covers_all(MARCH_PF_PLUS)

    def test_baselines_miss(self, result):
        assert not result.matrix.covers_all(SCAN)
        assert not result.matrix.covers_all(MATS_PLUS)

    def test_report_renders(self, result):
        text = result.report.render()
        assert "March PF+" in text


class TestElectricalCrossValidation:
    def test_march_pf_plus_flags_open4(self):
        results = electrical_detection(
            MARCH_PF_PLUS,
            points=((OpenLocation.BL_PRECHARGE_CELLS, 3e5),),
        )
        assert all(results.values())

    def test_simple_test_misses_open4(self):
        results = electrical_detection(
            SCAN, points=((OpenLocation.BL_PRECHARGE_CELLS, 3e5),),
        )
        assert not all(results.values())
