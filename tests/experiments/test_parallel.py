"""Parallel survey orchestration: determinism across jobs and caches.

The acceptance property for ``--jobs`` is strict: the Table 1 inventory,
the figure region maps, and the march verdicts must be *identical* for
any worker count, with the propagator cache on or off.  These tests pin
that on coarse grids (the full-resolution equivalence is exercised by
the benchmark suite).
"""

import pytest

from repro import telemetry
from repro.circuit.defects import OpenLocation
from repro.circuit.network import (
    propagator_cache_clear, propagator_cache_configure,
)
from repro.experiments import table1
from repro.experiments.march_pf import ELECTRICAL_POINTS, electrical_detection
from repro.march.library import MARCH_PF_PLUS
from repro.parallel import (
    AnalyzerSpec, FanoutStats, parallel_map, survey_locations,
)

COARSE_OPENS = (
    OpenLocation.CELL,
    OpenLocation.BL_PRECHARGE_CELLS,
    OpenLocation.WORD_LINE,
)


def _square(x):
    return x * x


def test_parallel_map_preserves_payload_order():
    payloads = list(range(20))
    assert parallel_map(_square, payloads, jobs=1) == [x * x for x in payloads]
    assert parallel_map(_square, payloads, jobs=4) == [x * x for x in payloads]


def test_parallel_map_merges_worker_telemetry():
    telemetry.reset()
    telemetry.enable()
    try:
        parallel_map(_observe_unit, [1.0, 2.0, 3.0], jobs=2)
        registry = telemetry.get_metrics()
        assert registry.counter_value("test.parallel_units") == 3
        hist = registry.snapshot()["histograms"]["test.parallel_sample"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(6.0)
        assert hist["min"] == 1.0 and hist["max"] == 3.0
    finally:
        telemetry.disable()
        telemetry.reset()


def _observe_unit(x):
    telemetry.count("test.parallel_units")
    telemetry.observe("test.parallel_sample", x)
    return x


def _survey_fingerprint(outcome):
    return {
        location: [
            (f.floating, f.probe_sos, f.ffm, f.region.labels)
            for f in findings
        ]
        for location, findings in outcome.findings.items()
    }


def test_survey_locations_identical_across_jobs():
    serial = survey_locations(COARSE_OPENS, jobs=1, n_r=4, n_u=3)
    fanned = survey_locations(COARSE_OPENS, jobs=4, n_r=4, n_u=3)
    assert _survey_fingerprint(serial) == _survey_fingerprint(fanned)
    assert serial.stats.observation_misses > 0


def _inventory(result):
    return [
        (str(r.ffm_sim), str(r.ffm_com), r.open_number, r.completed_text,
         r.floating)
        for r in result.rows
    ]


def test_table1_inventory_identical_jobs_and_cache():
    kwargs = dict(opens=COARSE_OPENS, n_r=4, n_u=3)
    reference = _inventory(table1.run_table1(**kwargs))
    assert _inventory(table1.run_table1(jobs=4, **kwargs)) == reference
    propagator_cache_configure(enabled=False)
    propagator_cache_clear()
    try:
        assert _inventory(table1.run_table1(**kwargs)) == reference
    finally:
        propagator_cache_configure(enabled=True)


def test_electrical_detection_identical_across_jobs():
    points = ELECTRICAL_POINTS[:3]
    serial = electrical_detection(MARCH_PF_PLUS, points=points, jobs=1)
    fanned = electrical_detection(MARCH_PF_PLUS, points=points, jobs=3)
    assert serial == fanned


def test_fanout_stats_ratios():
    stats = FanoutStats(3, 1, 8, 2)
    assert stats.observation_hit_ratio == pytest.approx(0.75)
    assert stats.propagator_hit_ratio == pytest.approx(0.8)
    assert FanoutStats().observation_hit_ratio is None


def test_analyzer_spec_roundtrip():
    spec = AnalyzerSpec(OpenLocation.CELL, batch_u=False)
    analyzer = spec.build()
    assert analyzer.location is OpenLocation.CELL
    assert analyzer.batch_u is False
