"""Tests for reporting primitives and the CLI."""

import pytest

from repro.cli import main
from repro.experiments.reporting import Claim, ExperimentReport, format_table


class TestClaim:
    def test_render_ok(self):
        claim = Claim("x", "a", "b", True)
        assert claim.render().startswith("[OK ]")

    def test_render_diff(self):
        assert Claim("x", "a", "b", False).render().startswith("[DIFF]")


class TestExperimentReport:
    def test_claims_accumulate(self):
        report = ExperimentReport("t")
        report.claim("one", "p", "m", True)
        report.claim("two", "p", "m", False)
        assert report.holding == 1
        assert not report.all_hold

    def test_render_contains_blocks_and_score(self):
        report = ExperimentReport("My Title")
        report.add_block("BLOCK TEXT")
        report.claim("c", "p", "m", True)
        text = report.render()
        assert "My Title" in text
        assert "BLOCK TEXT" in text
        assert "1/1 claims hold" in text


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_empty_rows(self):
        text = format_table(("h",), [])
        assert "h" in text


class TestCLI:
    def test_fp_space_runs(self, capsys):
        code = main(["fp-space"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Section 4" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
