"""Resilience layer: retry, timeout, fallback, pool breaks, checkpoints.

Every recovery path must preserve the fan-out's determinism contract:
whatever crashes, times out, or resumes, the final results equal the
clean serial run.  Unit functions live at module level (workers import
them by qualified name) and coordinate through flag files passed in the
payload, so "fail once, then succeed" behaves identically whichever
process runs the attempt.
"""

import multiprocessing
import os
import time

import pytest

from repro import cli, telemetry
from repro.circuit.defects import OpenLocation
from repro.io import CheckpointStore
from repro.parallel import (
    Resilience, RetryPolicy, UnitFailure, drain_resilience_log,
    parallel_map, parallel_map_ex, survey_locations,
)
import repro.parallel as par

#: Worker monkeypatches propagate to pool workers only when children are
#: forked copies of the parent (spawn re-imports the pristine module).
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection requires the fork start method",
)


def _double(payload):
    value, _flag = payload
    return value * 2


def _flaky(payload):
    """Raise on the first attempt ever (flag file), succeed after."""
    value, flag = payload
    if not os.path.exists(flag):
        open(flag, "w").close()
        raise ValueError("first attempt fails")
    return value * 2


def _exit_once(payload):
    """Kill the worker process outright on the first attempt."""
    value, flag = payload
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(17)
    return value + 1


def _slow_once(payload):
    """Sleep far past the unit timeout on the first attempt."""
    value, flag = payload
    if not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(2.0)
    return value - 1


def _always_fail(payload):
    raise RuntimeError("permanent failure")


def _never_call(payload):
    raise AssertionError("unit should have been resumed, not re-run")


def _strict_unit(payload):
    value, should_fail = payload
    telemetry.count("test.strict_units")
    if should_fail:
        time.sleep(0.3)
        raise ValueError("boom")
    return value * 10


def test_retry_policy_backoff_schedule():
    policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, backoff_max=0.35)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.35)  # capped


def test_retry_recovers_flaky_unit(tmp_path):
    drain_resilience_log()
    payloads = [(i, str(tmp_path / "flaky.flag")) for i in range(4)]
    outcome = parallel_map_ex(
        _flaky, payloads, jobs=2,
        policy=RetryPolicy(max_retries=2, backoff=0.01),
    )
    assert outcome.results == [0, 2, 4, 6]
    assert not outcome.failures
    log = drain_resilience_log()
    assert log.retries >= 1 and not log.failures


def test_retry_recovers_in_process_too(tmp_path):
    drain_resilience_log()
    payloads = [(i, str(tmp_path / "serial.flag")) for i in range(3)]
    outcome = parallel_map_ex(
        _flaky, payloads, jobs=1,
        policy=RetryPolicy(max_retries=1, backoff=0.0),
    )
    assert outcome.results == [0, 2, 4]
    assert drain_resilience_log().retries == 1


def test_fallback_after_retry_budget(tmp_path):
    # Unit 0 fails twice (first try + the one retry), exhausting
    # max_retries=1, then succeeds in the in-process fallback because by
    # then both of its flags exist.  Unit 1's flags are pre-created so
    # it sails through and keeps the fan-out on the pooled path.
    drain_resilience_log()
    flags_0 = [str(tmp_path / "a0.flag"), str(tmp_path / "b0.flag")]
    flags_1 = [str(tmp_path / "a1.flag"), str(tmp_path / "b1.flag")]
    for flag in flags_1:
        open(flag, "w").close()

    outcome = parallel_map_ex(
        _flaky_twice, [(5, *flags_0), (7, *flags_1)], jobs=2,
        policy=RetryPolicy(max_retries=1, backoff=0.01, fallback=True),
    )
    assert outcome.results == [50, 70]
    log = drain_resilience_log()
    assert log.retries == 1 and log.fallbacks == 1 and not log.failures


def _flaky_twice(payload):
    value, flag_a, flag_b = payload
    for flag in (flag_a, flag_b):
        if not os.path.exists(flag):
            open(flag, "w").close()
            raise ValueError("not yet")
    return value * 10


def test_broken_pool_recovers_via_fallback(tmp_path):
    drain_resilience_log()
    flag = str(tmp_path / "exit.flag")
    outcome = parallel_map_ex(
        _exit_once, [(i, flag) for i in range(5)], jobs=2,
        policy=RetryPolicy(max_retries=0, backoff=0.01, fallback=True),
    )
    assert outcome.results == [1, 2, 3, 4, 5]
    assert not outcome.failures
    log = drain_resilience_log()
    assert log.pool_breaks >= 1 and log.fallbacks >= 1


def test_unit_timeout_cancels_and_retries(tmp_path):
    drain_resilience_log()
    flag = str(tmp_path / "slow.flag")
    start = time.monotonic()
    outcome = parallel_map_ex(
        _slow_once, [(i, flag) for i in range(3)], jobs=2,
        policy=RetryPolicy(
            max_retries=1, backoff=0.01, unit_timeout=0.2, fallback=True,
        ),
    )
    elapsed = time.monotonic() - start
    assert outcome.results == [-1, 0, 1]
    assert elapsed < 1.9, "straggler was waited on instead of cancelled"
    assert drain_resilience_log().timeouts >= 1


def test_recorded_failure_keeps_other_results():
    drain_resilience_log()
    outcome = parallel_map_ex(
        _always_fail, [1], jobs=1,
        policy=RetryPolicy(max_retries=1, backoff=0.0, fallback=False),
    )
    assert outcome.results == [None]
    assert len(outcome.failures) == 1
    failure = outcome.failures[0]
    assert failure.error_type == "RuntimeError"
    assert failure.message == "permanent failure"
    assert failure.attempts == 2  # first try + one retry
    assert drain_resilience_log().failures == [failure]


def test_strict_failure_attaches_partials_and_merges_telemetry():
    """Regression: a raising unit used to discard every completed
    result and all collected worker telemetry snapshots."""
    drain_resilience_log()
    payloads = [(0, False), (1, True), (2, False), (3, False)]
    telemetry.reset()
    telemetry.enable()
    try:
        with pytest.raises(ValueError, match="boom") as excinfo:
            parallel_map(_strict_unit, payloads, jobs=2)
        assert excinfo.value.partial_results == {0: 0, 2: 20, 3: 30}
        failures = excinfo.value.unit_failures
        assert [f.index for f in failures] == [1]
        # the three successful units' snapshots were merged before raising
        registry = telemetry.get_metrics()
        assert registry.counter_value("test.strict_units") == 3
    finally:
        telemetry.disable()
        telemetry.reset()
    drain_resilience_log()


def test_checkpoint_resume_skips_completed_units(tmp_path):
    drain_resilience_log()
    path = str(tmp_path / "ck.jsonl")
    payloads = [(i, "unused") for i in range(6)]
    keys = [f"unit-{i}" for i in range(6)]
    with CheckpointStore(path) as store:
        first = parallel_map_ex(
            _double, payloads, jobs=2, checkpoint=store, keys=keys,
        )
    assert first.results == [0, 2, 4, 6, 8, 10]
    assert first.resumed == 0
    # a resumed run never executes the unit function at all
    with CheckpointStore(path) as store:
        second = parallel_map_ex(
            _never_call, payloads, jobs=2, checkpoint=store, keys=keys,
        )
    assert second.results == first.results
    assert second.resumed == 6
    assert drain_resilience_log().resumed == 6


def test_checkpoint_tolerates_torn_tail_line(tmp_path):
    path = str(tmp_path / "torn.jsonl")
    with CheckpointStore(path) as store:
        parallel_map_ex(
            _double, [(i, "x") for i in range(3)], jobs=1,
            checkpoint=store, keys=["a", "b", "c"],
        )
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"format": "repro-v1", "kind": "checkpoint-un')  # torn
    with CheckpointStore(path) as store:
        assert sorted(store.load()) == ["a", "b", "c"]
    drain_resilience_log()


def test_checkpoint_requires_keys(tmp_path):
    store = CheckpointStore(str(tmp_path / "ck.jsonl"))
    with pytest.raises(ValueError, match="keys"):
        parallel_map_ex(_double, [(1, "x")], checkpoint=store)
    with pytest.raises(ValueError, match="unique"):
        parallel_map_ex(
            _double, [(1, "x"), (2, "x")], keys=["same", "same"],
        )
    with pytest.raises(ValueError, match="codec"):
        parallel_map_ex(_double, [(1, "x")], keys=["a"], codec="nope")


def _survey_fingerprint(outcome):
    return {
        location: [
            (f.floating, f.probe_sos, f.ffm, f.region.labels)
            for f in findings
        ]
        for location, findings in outcome.findings.items()
    }


def test_survey_checkpoint_resume_matches_clean_inventory(tmp_path):
    """The acceptance property: resume after a hard interrupt (modelled
    by truncating the checkpoint) reproduces the jobs=1 inventory."""
    drain_resilience_log()
    kwargs = dict(n_r=4, n_u=3)
    opens = (OpenLocation.CELL,)
    clean = _survey_fingerprint(survey_locations(opens, jobs=1, **kwargs))

    path = str(tmp_path / "survey.jsonl")
    res = Resilience(checkpoint=CheckpointStore(path))
    full = survey_locations(opens, jobs=2, resilience=res, **kwargs)
    res.checkpoint.close()
    assert _survey_fingerprint(full) == clean and not full.failures

    lines = open(path, encoding="utf-8").read().splitlines(True)
    assert len(lines) > 2
    truncated = str(tmp_path / "truncated.jsonl")
    with open(truncated, "w", encoding="utf-8") as fh:
        fh.writelines(lines[: len(lines) // 2])

    drain_resilience_log()
    res2 = Resilience(checkpoint=CheckpointStore(truncated))
    resumed = survey_locations(opens, jobs=2, resilience=res2, **kwargs)
    res2.checkpoint.close()
    assert _survey_fingerprint(resumed) == clean
    assert resumed.resumed == len(lines) // 2
    assert drain_resilience_log().resumed == len(lines) // 2


_CRASH_FLAG = {"path": None}
_ORIG_SURVEY_UNIT = par._survey_unit


def _crashy_survey_unit(unit):
    if not os.path.exists(_CRASH_FLAG["path"]):
        open(_CRASH_FLAG["path"], "w").close()
        raise RuntimeError("injected survey crash")
    return _ORIG_SURVEY_UNIT(unit)


@fork_only
def test_survey_crash_injection_recovers(tmp_path, monkeypatch):
    """A worker crash mid-survey is retried and the inventory is intact."""
    drain_resilience_log()
    kwargs = dict(n_r=4, n_u=3)
    opens = (OpenLocation.CELL,)
    clean = _survey_fingerprint(survey_locations(opens, jobs=1, **kwargs))

    _CRASH_FLAG["path"] = str(tmp_path / "crash.flag")
    monkeypatch.setattr(par, "_survey_unit", _crashy_survey_unit)
    res = Resilience(policy=RetryPolicy(max_retries=2, backoff=0.01))
    crashed = survey_locations(opens, jobs=2, resilience=res, **kwargs)
    assert _survey_fingerprint(crashed) == clean
    assert not crashed.failures
    log = drain_resilience_log()
    assert log.retries >= 1 and not log.failures


# -- CLI surface (satellites 2 and 3) ------------------------------------------

def test_cli_jobs_notice_for_non_fanned_experiment(capsys):
    assert cli.main(["fp-space", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "[note] fp-space has no parallel fan-out" in out
    assert "fig3, fig4, march, table1" in out


def test_cli_default_output_has_no_notices(capsys):
    assert cli.main(["fp-space"]) == 0
    out = capsys.readouterr().out
    assert "[note]" not in out and "[resilience]" not in out


def test_probe_writable_removes_only_probe_created_files(tmp_path):
    fresh = tmp_path / "fresh.jsonl"
    cli._probe_writable(str(fresh))
    assert not fresh.exists(), "probe left a stray empty file behind"
    existing = tmp_path / "existing.jsonl"
    existing.write_text("keep me\n", encoding="utf-8")
    cli._probe_writable(str(existing))
    assert existing.read_text(encoding="utf-8") == "keep me\n"
    with pytest.raises(OSError):
        cli._probe_writable(str(tmp_path / "no" / "such" / "dir" / "f"))


def test_cli_resume_flag_validation(tmp_path, capsys):
    with pytest.raises(SystemExit):
        cli.main(["fig3", "--resume", str(tmp_path / "missing.jsonl")])
    assert "no such checkpoint" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        cli.main(["fig3", "--resume", "a.jsonl", "--checkpoint", "b.jsonl"])
    assert "different files" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        cli.main(["fig3", "--max-retries", "-1"])
    with pytest.raises(SystemExit):
        cli.main(["fig3", "--unit-timeout", "0"])
    capsys.readouterr()


def test_cli_checkpoint_then_resume_fig3(tmp_path, capsys):
    path = str(tmp_path / "fig3.jsonl")
    assert cli.main(["fig3", "--checkpoint", path]) == 0
    first = capsys.readouterr().out
    assert "[resilience] fig3: 0 failed" in first
    assert os.path.exists(path)
    assert cli.main(["fig3", "--resume", path]) == 0
    second = capsys.readouterr().out
    assert "2 resumed from checkpoint" in second
    # the report body is identical; only the [resilience] line differs
    assert first.split("[resilience]")[0] == second.split("[resilience]")[0]


def test_resilience_summary_formats_failures():
    drain_resilience_log()
    par._session_log().retries = 2
    par._session_log().fallbacks = 1
    par._session_log().failures.append(UnitFailure(
        key="survey|CELL|BIT_LINE|0r0|grid=abc|rows=3.0", index=4,
        error_type="ValueError", message="boom", attempts=3, duration=0.5,
    ))
    lines = cli._resilience_summary("table1")
    assert lines[0].startswith("[resilience] table1: 1 failed, 2 retried")
    assert "1 ran in-process" in lines[0]
    assert "FAILED survey|CELL|BIT_LINE|0r0" in lines[1]
    assert "ValueError after 3 attempts (boom)" in lines[1]
    drain_resilience_log()
