"""Tests for the retention extension."""

import math

import pytest

from repro.circuit.bridges import BridgeDefect, BridgeLocation
from repro.circuit.column import DRAMColumn
from repro.circuit.technology import default_technology
from repro.experiments.retention import measure_retention_time, run_retention
from repro.march.library import IFA_13, MARCH_C_MINUS
from repro.march.simulator import run_march
from repro.memory.array import Topology
from repro.memory.fault_machine import DataRetentionFault
from repro.memory.simulator import FaultyMemory


class TestLeakagePhysics:
    def test_healthy_cell_holds_through_short_idle(self):
        column = DRAMColumn(n_rows=2)
        column.write(0, 1)
        column.idle(0.05)
        assert column.read(0) == 1

    def test_leaky_cell_loses_its_one(self):
        column = DRAMColumn(
            n_rows=2, defect=BridgeDefect(BridgeLocation.CELL_GROUND, 1e9)
        )
        column.write(0, 1)
        column.idle(0.05)
        assert column.read(0) == 0

    def test_zero_never_degrades(self):
        column = DRAMColumn(
            n_rows=2, defect=BridgeDefect(BridgeLocation.CELL_GROUND, 1e9)
        )
        column.write(0, 0)
        column.idle(1.0)
        assert column.read(0) == 0

    def test_temperature_accelerates_loss(self):
        hot = default_technology().at_temperature(85)
        cold = default_technology()
        assert hot.effective_cell_leak < cold.effective_cell_leak
        assert hot.nominal_retention_tau < cold.nominal_retention_tau

    def test_measure_retention_monotone_in_leak(self):
        weak = measure_retention_time(leak_resistance=1e11, resolution=12)
        strong = measure_retention_time(leak_resistance=1e9, resolution=12)
        assert strong < weak

    def test_negative_idle_rejected(self):
        column = DRAMColumn(n_rows=2)
        with pytest.raises(ValueError):
            column.idle(-1.0)


class TestDRFMachine:
    TOPO = Topology(3, 2)

    def test_loses_one_after_retention_time(self):
        fault = DataRetentionFault(0, self.TOPO, retention_time=0.04)
        fault.on_write(0, 1)
        fault.pause(0.05)
        assert fault.state == 0 and fault.triggered

    def test_refresh_resets_the_clock(self):
        fault = DataRetentionFault(0, self.TOPO, retention_time=0.04)
        fault.on_write(0, 1)
        fault.pause(0.03)
        fault.on_read(0, 1)          # restore refreshes
        fault.pause(0.03)
        assert fault.state == 1

    def test_zero_is_safe(self):
        fault = DataRetentionFault(0, self.TOPO, retention_time=0.01)
        fault.on_write(0, 0)
        fault.pause(1.0)
        assert fault.state == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DataRetentionFault(0, self.TOPO, retention_time=0.0)
        with pytest.raises(ValueError):
            DataRetentionFault(0, self.TOPO, lost_value=2)


class TestDetection:
    def test_ifa13_detects_march_c_misses(self):
        topo = Topology(3, 2)
        for test, expected in ((MARCH_C_MINUS, False), (IFA_13, True)):
            fault = DataRetentionFault(2, topo, retention_time=0.05)
            memory = FaultyMemory(topo, fault)
            assert run_march(test, memory).detected is expected


@pytest.mark.slow
class TestExperiment:
    def test_all_claims_hold(self):
        result = run_retention()
        assert result.report.all_hold, result.report.render()
