"""Tests for the Table 1 experiment (subset of opens; coarse grid)."""

import pytest

from repro.circuit.defects import OpenLocation
from repro.core.fault_primitives import parse_fp
from repro.core.ffm import FFM
from repro.experiments.table1 import (
    PAPER_TABLE1,
    REFERENCE_COMPLETED_FPS,
    run_table1,
)


@pytest.fixture(scope="module")
def subset():
    return run_table1(
        opens=(OpenLocation.BL_PRECHARGE_CELLS, OpenLocation.WORD_LINE),
        n_r=10, n_u=6, max_extra_ops=2,
    )


class TestPaperTable:
    def test_fifteen_rows(self):
        assert len(PAPER_TABLE1) == 15

    def test_not_possible_rows(self):
        impossible = [r for r in PAPER_TABLE1 if r.completed is None]
        assert len(impossible) == 4
        assert all(9 in r.opens or 1 in r.opens for r in impossible)

    def test_completed_rows_parse(self):
        for row in PAPER_TABLE1:
            if row.completed is not None:
                parse_fp(row.completed)

    def test_reference_fps_parse_and_complete(self):
        for text in REFERENCE_COMPLETED_FPS:
            fp = parse_fp(text)
            assert fp.is_completed
            assert fp.is_faulty()


class TestSubsetRun:
    def test_open4_rdf1_row_exact(self, subset):
        rows = [
            r for r in subset.rows
            if r.open_number == 4 and r.ffm_sim is FFM.RDF1
        ]
        assert rows
        assert rows[0].completed_text == "<1v [w0BL] r1v/0/0>"
        assert rows[0].ffm_com is FFM.RDF0

    def test_open9_all_not_possible(self, subset):
        rows = [r for r in subset.rows if r.open_number == 9]
        assert rows
        assert all(r.completed is None for r in rows)

    def test_claims_hold(self, subset):
        assert subset.report.all_hold, subset.report.render()

    def test_grades_present(self, subset):
        assert subset.matches["exact"] >= 1

    def test_report_renders_table(self, subset):
        text = subset.report.render()
        assert "Completed FP" in text
        assert "Open 4" in text
