"""Cross-process trace propagation: ``--jobs N`` traces stay one tree."""

import json
import time

import pytest

from repro import telemetry
from repro.circuit.defects import OpenLocation
from repro.experiments import table1
from repro.service import ServiceClient, SweepService

COARSE_OPENS = (OpenLocation.CELL, OpenLocation.BL_PRECHARGE_CELLS)
COARSE_NAMES = tuple(location.name for location in COARSE_OPENS)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _load(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


def _assert_connected_tree(spans, root_name):
    """One trace id, unique span ids, one root, every parent resolvable."""
    assert spans, "empty trace"
    assert len({span["trace"] for span in spans}) == 1
    ids = {span["span"] for span in spans}
    assert len(ids) == len(spans), "duplicate span ids after adoption"
    roots = [span for span in spans if span["parent"] is None]
    assert len(roots) == 1, f"expected one root, got {roots}"
    assert roots[0]["name"] == root_name
    by_id = {span["span"]: span for span in spans}
    for span in spans:
        if span["parent"] is not None:
            parent = by_id.get(span["parent"])
            assert parent is not None, f"dangling parent in {span}"
            assert span["depth"] == parent["depth"] + 1
    return roots[0]


def test_jobs2_table1_exports_one_connected_tree(tmp_path):
    telemetry.reset()
    telemetry.enable()
    table1.run_table1(opens=COARSE_OPENS, n_r=3, n_u=3, jobs=2)
    telemetry.disable()
    path = str(tmp_path / "trace.jsonl")
    count = telemetry.get_tracer().export_jsonl(path)
    spans = _load(path)
    assert len(spans) == count
    _assert_connected_tree(spans, "experiment.table1")
    remote = [s for s in spans if s.get("attrs", {}).get("remote")]
    assert remote, "worker-process spans never came home"
    for span in remote:
        assert span["parent"] is not None
        assert span["duration"] is not None


def test_serial_run_has_no_remote_spans(tmp_path):
    telemetry.reset()
    telemetry.enable()
    table1.run_table1(opens=COARSE_OPENS, n_r=3, n_u=3, jobs=1)
    telemetry.disable()
    path = str(tmp_path / "trace.jsonl")
    telemetry.get_tracer().export_jsonl(path)
    spans = _load(path)
    _assert_connected_tree(spans, "experiment.table1")
    assert not any(s.get("attrs", {}).get("remote") for s in spans)


def test_served_job_exports_one_connected_tree(tmp_path):
    trace_path = str(tmp_path / "serve-trace.jsonl")
    with SweepService(port=0, trace_export=trace_path) as service:
        client = ServiceClient(service.url)
        job_id = client.submit({
            "experiment": "table1",
            "opens": list(COARSE_NAMES),
            "n_r": 3,
            "n_u": 3,
            "jobs": 2,
        })["job"]["id"]
        client.wait(job_id, timeout=300.0)
        record = client.job(job_id)
        # the scheduler appends the trace right after the job settles
        deadline = time.monotonic() + 10.0
        spans = []
        while time.monotonic() < deadline:
            try:
                spans = _load(trace_path)
            except OSError:
                spans = []
            if spans:
                break
            time.sleep(0.05)
    root = _assert_connected_tree(spans, "service.job")
    # the job record carries the correlation ids of its trace
    assert record["trace"] == root["trace"]
    assert record["root_span"] == root["span"]
    names = {span["name"] for span in spans}
    assert "experiment.table1" in names
    assert any(s.get("attrs", {}).get("remote") for s in spans)
