"""Tests for the coverage matrix."""

import pytest

from repro.core.fault_primitives import parse_fp
from repro.march.coverage import coverage_matrix
from repro.march.library import MARCH_PF_PLUS, SCAN
from repro.march.notation import parse_march
from repro.memory.array import Topology

FAULTS = (
    parse_fp("<1v [w0BL] r1v/0/0>"),
    parse_fp("<0v [w1BL] r0v/1/1>"),
    parse_fp("<[w1 w0] r0/1/1>"),
)
TOPO = Topology(3, 2)


@pytest.fixture(scope="module")
def matrix():
    return coverage_matrix((SCAN, MARCH_PF_PLUS), FAULTS, TOPO)


class TestCoverageMatrix:
    def test_shape(self, matrix):
        assert len(matrix.detected) == 2
        assert all(len(row) == len(FAULTS) for row in matrix.detected)

    def test_march_pf_plus_covers_all(self, matrix):
        assert matrix.covers_all(MARCH_PF_PLUS)
        assert matrix.detection_count(MARCH_PF_PLUS) == len(FAULTS)

    def test_scan_misses(self, matrix):
        assert not matrix.covers_all(SCAN)
        assert matrix.missed_by(SCAN)

    def test_missed_by_complete_cover_is_empty(self, matrix):
        assert matrix.missed_by(MARCH_PF_PLUS) == ()

    def test_best_tests(self, matrix):
        assert matrix.best_tests()[0] is MARCH_PF_PLUS

    def test_render_mentions_tests_and_ffms(self, matrix):
        text = matrix.render()
        assert "March PF+" in text
        assert "RDF1" in text and "RDF0" in text
        assert "3/3" in text

    def test_best_tests_prefers_cheaper(self):
        cheap = parse_march("{⇕(w1); ⇑(r1,w0,r0,w0); ⇑(r0,w1,r1,w1)}", "cheap")
        m = coverage_matrix((MARCH_PF_PLUS, cheap), FAULTS[:1], TOPO)
        if m.covers_all(cheap):
            assert m.best_tests()[0] is cheap
