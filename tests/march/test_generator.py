"""Tests for constructive march-test generation."""

import pytest

from repro.core.fault_primitives import parse_fp
from repro.march.generator import generate_march
from repro.march.notation import Direction
from repro.march.simulator import detects, run_march
from repro.memory.array import Topology
from repro.memory.simulator import FaultyMemory

TOPO = Topology(3, 2)

READ_FAULT = parse_fp("<1v [w0BL] r1v/0/0>")
WRITE_FAULT = parse_fp("<1v [w1BL] w0v/1/->")
HISTORY_FAULT = parse_fp("<[w1 w0] r0/1/1>")
STATE_FAULT = parse_fp("<[w1 w0]/1/->")
STATIC_FAULT = parse_fp("<0r0/0/1>")


class TestGeneration:
    def test_generated_test_verified(self):
        g = generate_march((READ_FAULT, WRITE_FAULT, HISTORY_FAULT), topology=TOPO)
        assert g.verified
        assert not g.uncoverable

    def test_generated_test_detects_each_fault(self):
        g = generate_march((READ_FAULT, HISTORY_FAULT), topology=TOPO,
                           verify=False)
        for fp in (READ_FAULT, HISTORY_FAULT):
            assert detects(g.test, fp, TOPO)

    def test_generated_test_is_sound(self):
        g = generate_march((READ_FAULT, WRITE_FAULT), topology=TOPO,
                           verify=False)
        for direction in (Direction.UP, Direction.DOWN):
            memory = FaultyMemory(TOPO)
            assert not run_march(g.test, memory, either_as=direction).detected

    def test_static_faults_reported_uncoverable(self):
        g = generate_march((READ_FAULT, STATIC_FAULT), topology=TOPO,
                           verify=False)
        assert STATIC_FAULT in g.uncoverable
        assert READ_FAULT in g.covered

    def test_complement_set_generates_too(self):
        faults = (READ_FAULT, READ_FAULT.complement())
        g = generate_march(faults, topology=TOPO)
        assert g.verified

    def test_state_fault_coverage(self):
        g = generate_march((STATE_FAULT,), topology=TOPO)
        assert g.verified and not g.uncoverable

    def test_minimize_keeps_coverage(self):
        faults = (READ_FAULT, WRITE_FAULT, HISTORY_FAULT, STATE_FAULT)
        full = generate_march(faults, topology=TOPO, verify=False)
        minimized = generate_march(faults, topology=TOPO, minimize=True)
        assert minimized.verified
        assert minimized.ops_per_address <= full.ops_per_address

    def test_duplicate_faults_share_idioms(self):
        one = generate_march((READ_FAULT,), topology=TOPO, verify=False)
        two = generate_march((READ_FAULT, READ_FAULT), topology=TOPO,
                             verify=False)
        assert one.ops_per_address == two.ops_per_address
