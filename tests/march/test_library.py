"""Tests for the march-test library."""

import pytest

from repro.march.library import (
    ALL_TESTS,
    BASELINE_TESTS,
    MARCH_B,
    MARCH_C_MINUS,
    MARCH_PF,
    MARCH_PF_PLUS,
    MARCH_SS,
    MATS_PLUS,
    SCAN,
    get_test,
)
from repro.march.notation import Direction
from repro.march.simulator import run_march
from repro.memory.array import Topology
from repro.memory.simulator import FaultyMemory


class TestComplexities:
    """Operation counts as published for the classic tests."""

    @pytest.mark.parametrize(
        "test,expected",
        [
            (SCAN, 4), (MATS_PLUS, 5), (MARCH_C_MINUS, 10),
            (MARCH_B, 17), (MARCH_SS, 22), (MARCH_PF, 16),
        ],
    )
    def test_ops_per_address(self, test, expected):
        assert test.ops_per_address == expected

    def test_march_pf_matches_paper_text(self):
        assert MARCH_PF.to_string() == (
            "{⇕(w0,w1); ⇕(r1,w1,w0,w0,w1,r1); ⇕(w1,w0); "
            "⇕(r0,w0,w1,w1,w0,r0)}"
        )


class TestSoundness:
    """Every library test must pass on a fault-free memory."""

    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    @pytest.mark.parametrize("direction", [Direction.UP, Direction.DOWN])
    def test_fault_free_passes(self, test, direction):
        memory = FaultyMemory(Topology(4, 2))
        result = run_march(test, memory, either_as=direction)
        assert not result.detected

    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    def test_single_cell_memory(self, test):
        memory = FaultyMemory(Topology(1, 1))
        assert not run_march(test, memory).detected


class TestLookup:
    def test_get_test_case_insensitive(self):
        assert get_test("march pf+") is MARCH_PF_PLUS
        assert get_test("MATS+") is MATS_PLUS

    def test_get_test_unknown(self):
        with pytest.raises(KeyError):
            get_test("march zz")

    def test_all_tests_unique_names(self):
        names = [t.name for t in ALL_TESTS]
        assert len(names) == len(set(names))

    def test_baselines_exclude_pf_tests(self):
        names = {t.name for t in BASELINE_TESTS}
        assert "March PF" not in names
        assert "March PF+" not in names
