"""Property-based tests on the march engine."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.march.library import ALL_TESTS
from repro.march.notation import Direction, MarchElement, MarchOp, MarchTest
from repro.march.simulator import run_march
from repro.memory.array import MemoryArray, Topology
from repro.memory.simulator import FaultyMemory

topologies = st.builds(
    Topology,
    st.integers(1, 5),
    st.integers(1, 3),
)


@st.composite
def consistent_march_tests(draw):
    """March tests whose reads always expect the marched-in state.

    Built by tracking the per-address background state: each element's
    reads expect the current state, writes update it.  Such a test is
    sound on any fault-free memory by construction.
    """
    n_elements = draw(st.integers(1, 4))
    state = draw(st.sampled_from((0, 1)))
    elements = [
        MarchElement(Direction.EITHER, (MarchOp("w", state),))
    ]
    for _ in range(n_elements):
        direction = draw(st.sampled_from(list(Direction)))
        n_ops = draw(st.integers(1, 4))
        ops = []
        for _ in range(n_ops):
            if draw(st.booleans()):
                ops.append(MarchOp("r", state))
            else:
                state = draw(st.sampled_from((0, 1)))
                ops.append(MarchOp("w", state))
        elements.append(MarchElement(direction, tuple(ops)))
    return MarchTest("generated", tuple(elements))


@settings(max_examples=60)
@given(consistent_march_tests(), topologies,
       st.sampled_from((Direction.UP, Direction.DOWN)))
def test_consistent_tests_are_sound(test, topology, either_as):
    memory = FaultyMemory(topology)
    assert not run_march(test, memory, either_as=either_as).detected


@settings(max_examples=30)
@given(consistent_march_tests(), topologies)
def test_complemented_tests_are_sound(test, topology):
    memory = FaultyMemory(topology)
    assert not run_march(test.complement(), memory).detected


@settings(max_examples=30)
@given(consistent_march_tests(), topologies)
def test_operation_count(test, topology):
    memory = FaultyMemory(topology)
    result = run_march(test, memory)
    assert result.operations == test.operation_count(topology.size)


@settings(max_examples=20)
@given(topologies, st.lists(
    st.tuples(st.booleans(), st.integers(0, 24), st.sampled_from((0, 1))),
    max_size=30,
))
def test_fault_free_memory_is_an_array(topology, script):
    """FaultyMemory without a fault is observationally a plain array."""
    memory = FaultyMemory(topology)
    model = MemoryArray(topology)
    for is_write, raw_addr, value in script:
        address = raw_addr % topology.size
        if is_write:
            memory.write(address, value)
            model.write(address, value)
        else:
            assert memory.read(address) == model.read(address)


def test_library_round_trips_through_notation():
    from repro.march.notation import parse_march

    for test in ALL_TESTS:
        assert parse_march(test.to_string(), test.name).elements == test.elements
