"""Unit tests for march-test notation."""

import pytest

from repro.march.notation import (
    Direction,
    MarchElement,
    MarchOp,
    MarchTest,
    parse_march,
)


class TestMarchOp:
    def test_valid(self):
        assert str(MarchOp("r", 0)) == "r0"
        assert str(MarchOp("w", 1)) == "w1"

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            MarchOp("x", 0)

    def test_value_validation(self):
        with pytest.raises(ValueError):
            MarchOp("r", 2)

    def test_predicates(self):
        assert MarchOp("r", 0).is_read
        assert MarchOp("w", 0).is_write

    def test_complement(self):
        assert MarchOp("r", 0).complement() == MarchOp("r", 1)


class TestMarchElement:
    def test_requires_ops(self):
        with pytest.raises(ValueError):
            MarchElement(Direction.UP, ())

    def test_addresses_up(self):
        e = MarchElement(Direction.UP, (MarchOp("r", 0),))
        assert list(e.addresses(3)) == [0, 1, 2]

    def test_addresses_down(self):
        e = MarchElement(Direction.DOWN, (MarchOp("r", 0),))
        assert list(e.addresses(3)) == [2, 1, 0]

    def test_addresses_either_resolution(self):
        e = MarchElement(Direction.EITHER, (MarchOp("r", 0),))
        assert list(e.addresses(2, Direction.DOWN)) == [1, 0]
        assert list(e.addresses(2)) == [0, 1]

    def test_str(self):
        e = MarchElement(Direction.UP, (MarchOp("r", 0), MarchOp("w", 1)))
        assert str(e) == "⇑(r0,w1)"

    def test_complement(self):
        e = MarchElement(Direction.UP, (MarchOp("r", 0), MarchOp("w", 1)))
        assert str(e.complement()) == "⇑(r1,w0)"


class TestParsing:
    def test_unicode_directions(self):
        test = parse_march("{⇕(w0); ⇑(r0,w1); ⇓(r1)}")
        assert [e.direction for e in test.elements] == [
            Direction.EITHER, Direction.UP, Direction.DOWN,
        ]

    def test_ascii_aliases(self):
        test = parse_march("{UD(w0); U(r0,w1); D(r1)}")
        assert [e.direction for e in test.elements] == [
            Direction.EITHER, Direction.UP, Direction.DOWN,
        ]
        test2 = parse_march("{any(w0); up(r0); down(r1)}")
        assert [e.direction for e in test2.elements] == [
            Direction.EITHER, Direction.UP, Direction.DOWN,
        ]

    def test_bare_parentheses_mean_either(self):
        test = parse_march("{(w0); (r0)}")
        assert all(e.direction is Direction.EITHER for e in test.elements)

    def test_roundtrip(self):
        text = "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}"
        test = parse_march(text)
        assert parse_march(test.to_string()).elements == test.elements

    def test_whitespace_tolerant(self):
        test = parse_march("{ ⇑( r0 , w1 ) ;  ⇓(r1) }")
        assert test.elements[0].ops == (MarchOp("r", 0), MarchOp("w", 1))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_march("{nonsense}")
        with pytest.raises(ValueError):
            parse_march("{⇑(r0) junk ⇓(r1)}")
        with pytest.raises(ValueError):
            parse_march("{sideways(r0)}")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_march("{}")

    def test_rejects_bad_ops(self):
        with pytest.raises(ValueError):
            parse_march("{⇑(x0)}")


class TestMarchTest:
    def test_requires_elements(self):
        with pytest.raises(ValueError):
            MarchTest("empty", ())

    def test_ops_per_address(self):
        test = parse_march("{⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}")
        assert test.ops_per_address == 6
        assert test.operation_count(10) == 60

    def test_complement(self):
        test = parse_march("{⇕(w0); ⇑(r0,w1)}", "t")
        comp = test.complement()
        assert comp.to_string() == "{⇕(w1); ⇑(r1,w0)}"
        assert comp.name == "t-complement"

    def test_str(self):
        test = parse_march("{⇕(w0)}")
        assert str(test) == "{⇕(w0)}"


class TestMarchPause:
    def test_parse_default_delay(self):
        from repro.march.notation import MarchPause, parse_march

        test = parse_march("{⇕(w0); Del; ⇕(r0)}")
        assert test.pauses == (MarchPause(),)
        assert test.ops_per_address == 2

    def test_parse_explicit_duration(self):
        from repro.march.notation import parse_march

        test = parse_march("{⇕(w0); Del(0.05); ⇕(r0)}")
        assert test.pauses[0].seconds == pytest.approx(0.05)

    def test_roundtrip(self):
        from repro.march.notation import parse_march

        text = "{⇕(w1); Del; ⇕(r1); Del(0.05); ⇕(r1)}"
        test = parse_march(text)
        assert parse_march(test.to_string()).elements == test.elements

    def test_pause_validation(self):
        from repro.march.notation import MarchPause

        with pytest.raises(ValueError):
            MarchPause(0.0)

    def test_complement_keeps_pauses(self):
        from repro.march.notation import parse_march

        test = parse_march("{⇕(w0); Del; ⇕(r0)}")
        comp = test.complement()
        assert len(comp.pauses) == 1
        assert comp.march_elements[0].ops[0].value == 1

    def test_ifa13_shape(self):
        from repro.march.library import IFA_13

        assert IFA_13.ops_per_address == 8
        assert len(IFA_13.pauses) == 2
