"""Tests for march execution and detection qualification."""

import pytest

from repro.core.fault_primitives import parse_fp
from repro.march.library import MARCH_PF_PLUS, MATS_PLUS, SCAN
from repro.march.notation import Direction, parse_march
from repro.march.simulator import detects, escape_cases, run_march
from repro.memory.array import Topology
from repro.memory.fault_machine import BehavioralFault
from repro.memory.simulator import FaultyMemory

TOPO = Topology(4, 2)


def faulty(text, victim=0, node_value=None):
    fault = BehavioralFault.from_fp(
        parse_fp(text), victim, TOPO, node_value=node_value
    )
    return FaultyMemory(TOPO, fault)


class TestRunMarch:
    def test_counts_operations(self):
        memory = FaultyMemory(TOPO)
        result = run_march(MATS_PLUS, memory)
        assert result.operations == MATS_PLUS.operation_count(TOPO.size)

    def test_active_static_fault_detected_by_scan(self):
        memory = faulty("<0r0/0/1>", node_value=1)  # active IRF0
        result = run_march(SCAN, memory)
        assert result.detected

    def test_scan_write_disarms_bitline_fault(self):
        """SCAN's w0 sweep drives the bit line low before every r0, so the
        [w1_BL]-armed fault never triggers — the paper's escape mechanism."""
        memory = faulty("<0v [w1BL] r0v/1/1>", node_value=1)
        result = run_march(SCAN, memory)
        assert not result.detected

    def test_mismatch_records_location(self):
        memory = faulty("<0r0/0/1>", node_value=1)
        result = run_march(SCAN, memory)
        first = result.mismatches[0]
        assert first.expected != first.observed
        assert 0 <= first.address < TOPO.size

    def test_stop_at_first(self):
        memory = faulty("<0r0/0/1>", node_value=1)
        result = run_march(SCAN, memory, stop_at_first=True)
        assert len(result.mismatches) == 1

    def test_either_resolution_changes_order(self):
        test = parse_march("{⇕(w1); ⇕(r1)}")
        memory = FaultyMemory(TOPO)
        up = run_march(test, memory, either_as=Direction.UP)
        memory2 = FaultyMemory(TOPO)
        down = run_march(test, memory2, either_as=Direction.DOWN)
        assert not up.detected and not down.detected

    def test_explicit_size(self):
        memory = FaultyMemory(TOPO)
        result = run_march(MATS_PLUS, memory, size=4)
        assert result.operations == MATS_PLUS.ops_per_address * 4


class TestDetects:
    def test_march_pf_plus_detects_rdf1_completed(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        assert detects(MARCH_PF_PLUS, fp, TOPO)

    def test_simple_test_misses_rdf1_completed(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        simple = parse_march("{⇕(w1); ⇕(r1)}", "w1r1")
        assert not detects(simple, fp, TOPO)

    def test_escape_cases_name_the_scenarios(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        simple = parse_march("{⇕(w1); ⇕(r1)}", "w1r1")
        escapes = escape_cases(simple, fp, TOPO)
        assert escapes
        victims = {victim for victim, _, _ in escapes}
        assert victims  # every victim escapes under some floating value

    def test_detection_requires_all_node_values(self):
        """A test catching the fault only when armed-by-luck must fail."""
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        single = Topology(1, 1)
        # A bare read: triggers only if the node happened to float low.
        lucky = parse_march("{⇕(r1)}", "lucky")
        assert detects(lucky, fp, single, node_values=(0,))
        assert not detects(lucky, fp, single, node_values=(0, 1))

    def test_static_fault_active_only_qualification(self):
        fp = parse_fp("<0r0/0/1>")
        assert detects(SCAN, fp, TOPO, node_values=(1,))
        assert not detects(SCAN, fp, TOPO, node_values=(0, 1))

    def test_default_topology(self):
        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        assert detects(MARCH_PF_PLUS, fp)
