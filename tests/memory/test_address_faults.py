"""Address-decoder fault machines and the classical MATS+ theorem."""

import pytest

from repro.march.library import MARCH_C_MINUS, MARCH_PF_PLUS, MATS, MATS_PLUS, SCAN
from repro.march.notation import Direction
from repro.march.simulator import run_march
from repro.memory.address_faults import AddressFaultKind, AddressFaultMemory
from repro.memory.array import Topology

TOPO = Topology(4, 2)


def scenarios(kind):
    for a in TOPO.addresses():
        if kind is AddressFaultKind.NO_CELL:
            yield a, None
        else:
            for b in TOPO.addresses():
                if b != a:
                    yield a, b


def detects_all(test, kind):
    for a, b in scenarios(kind):
        for direction in (Direction.UP, Direction.DOWN):
            memory = AddressFaultMemory(TOPO, kind, a, b)
            if not run_march(test, memory, either_as=direction,
                             stop_at_first=True).detected:
                return False
    return True


class TestSemantics:
    def test_no_cell_loses_writes(self):
        memory = AddressFaultMemory(TOPO, AddressFaultKind.NO_CELL, 3)
        memory.write(3, 1)
        memory.write(0, 0)
        memory.read(0)
        assert memory.read(3) == 0          # stale data line, not the 1

    def test_no_cell_reads_stale_line(self):
        memory = AddressFaultMemory(TOPO, AddressFaultKind.NO_CELL, 3)
        memory.write(0, 1)
        memory.read(0)
        assert memory.read(3) == 1          # whatever the line last carried

    def test_no_address_lands_on_partner(self):
        memory = AddressFaultMemory(TOPO, AddressFaultKind.NO_ADDRESS, 2, 5)
        memory.write(2, 1)
        assert memory.array.read(5) == 1    # landed on the partner
        assert memory.array.read(2) == 0    # the orphan cell never written
        assert memory.read(2) == 1          # reads follow the mapping

    def test_multi_cell_disturbs_partner(self):
        memory = AddressFaultMemory(TOPO, AddressFaultKind.MULTI_CELL, 1, 6)
        memory.write(6, 0)
        memory.write(1, 1)
        assert memory.read(6) == 1          # the partner got overwritten

    def test_multi_cell_read_is_wired_and(self):
        memory = AddressFaultMemory(TOPO, AddressFaultKind.MULTI_CELL, 1, 6)
        memory.write(1, 1)                   # writes both cells 1
        memory.array.write(6, 0)             # partner flips underneath
        assert memory.read(1) == 0           # conflicting cells read 0

    def test_multi_address_aliases(self):
        memory = AddressFaultMemory(TOPO, AddressFaultKind.MULTI_ADDRESS, 0, 4)
        memory.write(4, 1)                   # address 4 decodes onto cell 0
        assert memory.read(0) == 1
        assert memory.read(4) == 1
        memory.write(0, 0)
        assert memory.read(4) == 0

    def test_unrelated_addresses_untouched(self):
        for kind in AddressFaultKind:
            partner = None if kind is AddressFaultKind.NO_CELL else 5
            memory = AddressFaultMemory(TOPO, kind, 2, partner)
            memory.write(7, 1)
            assert memory.read(7) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressFaultMemory(TOPO, AddressFaultKind.NO_CELL, 0, 1)
        with pytest.raises(ValueError):
            AddressFaultMemory(TOPO, AddressFaultKind.MULTI_CELL, 0)
        with pytest.raises(ValueError):
            AddressFaultMemory(TOPO, AddressFaultKind.MULTI_CELL, 0, 0)


class TestClassicalTheorem:
    """MATS+ is the minimal march test detecting all AFs."""

    @pytest.mark.parametrize("kind", list(AddressFaultKind))
    def test_mats_plus_detects_all(self, kind):
        assert detects_all(MATS_PLUS, kind)

    @pytest.mark.parametrize("test", [MARCH_C_MINUS, MARCH_PF_PLUS],
                             ids=lambda t: t.name)
    @pytest.mark.parametrize("kind", list(AddressFaultKind))
    def test_stronger_tests_detect_all(self, test, kind):
        assert detects_all(test, kind)

    def test_scan_misses_af_a(self):
        assert not detects_all(SCAN, AddressFaultKind.NO_CELL)

    def test_mats_misses_af_a(self):
        assert not detects_all(MATS, AddressFaultKind.NO_CELL)
