"""Unit tests for the array topology and the plain memory array."""

import pytest

from repro.memory.array import MemoryArray, Topology


class TestTopology:
    def test_size(self):
        assert Topology(4, 2).size == 8

    def test_row_major_addressing(self):
        topo = Topology(3, 4)
        assert topo.row_of(0) == 0 and topo.column_of(0) == 0
        assert topo.row_of(5) == 1 and topo.column_of(5) == 1
        assert topo.address_of(1, 1) == 5

    def test_address_roundtrip(self):
        topo = Topology(3, 4)
        for addr in topo.addresses():
            assert topo.address_of(topo.row_of(addr), topo.column_of(addr)) == addr

    def test_same_column(self):
        topo = Topology(3, 2)
        assert topo.same_column(0, 2)
        assert topo.same_column(1, 5)
        assert not topo.same_column(0, 1)

    def test_column_addresses(self):
        topo = Topology(3, 2)
        assert topo.column_addresses(0) == (0, 2, 4)
        assert topo.column_addresses(1) == (1, 3, 5)

    def test_bitline_neighbours_exclude_self(self):
        topo = Topology(3, 2)
        assert topo.bitline_neighbours(2) == (0, 4)

    def test_single_column(self):
        topo = Topology(4, 1)
        assert topo.column_addresses(0) == (0, 1, 2, 3)
        assert topo.same_column(0, 3)

    def test_bounds_checks(self):
        topo = Topology(2, 2)
        with pytest.raises(IndexError):
            topo.row_of(4)
        with pytest.raises(IndexError):
            topo.address_of(2, 0)
        with pytest.raises(IndexError):
            topo.column_addresses(2)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Topology(0, 1)
        with pytest.raises(ValueError):
            Topology(1, 0)


class TestMemoryArray:
    def test_fill_default_zero(self):
        array = MemoryArray(Topology(2, 2))
        assert array.dump() == (0, 0, 0, 0)

    def test_write_read(self):
        array = MemoryArray(Topology(2, 2))
        array.write(3, 1)
        assert array.read(3) == 1
        assert array.read(0) == 0

    def test_fill(self):
        array = MemoryArray(Topology(2, 2))
        array.fill(1)
        assert array.dump() == (1, 1, 1, 1)

    def test_len(self):
        assert len(MemoryArray(Topology(3, 2))) == 6

    def test_invalid_values_rejected(self):
        array = MemoryArray(Topology(2, 1))
        with pytest.raises(ValueError):
            array.write(0, 2)
        with pytest.raises(ValueError):
            array.fill(7)
        with pytest.raises(ValueError):
            MemoryArray(Topology(2, 1), fill=9)

    def test_out_of_range_address(self):
        array = MemoryArray(Topology(2, 1))
        with pytest.raises(IndexError):
            array.read(2)
