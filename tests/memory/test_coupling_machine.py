"""Behavioural semantics of the coupling-fault machines."""

import pytest

from repro.core.coupling import CouplingFFM
from repro.memory.array import Topology
from repro.memory.coupling_machine import CouplingFault
from repro.memory.simulator import FaultyMemory

TOPO = Topology(4, 2)
AGG, VIC = 2, 0  # same column


def machine(ffm):
    return CouplingFault(ffm, AGG, VIC, TOPO)


class TestCFst:
    def test_flips_when_condition_met(self):
        m = machine(CouplingFFM.CFST_11)
        m.on_write(AGG, 1)
        m.on_write(VIC, 1)
        assert m.state == 0 and m.triggered

    def test_no_flip_when_aggressor_differs(self):
        m = machine(CouplingFFM.CFST_11)
        m.on_write(AGG, 0)
        m.on_write(VIC, 1)
        assert m.state == 1

    def test_condition_established_by_aggressor_write(self):
        m = machine(CouplingFFM.CFST_11)
        m.on_write(VIC, 1)
        assert m.state == 1
        m.on_write(AGG, 1)
        assert m.state == 0

    def test_initial_zero_condition_applies_immediately(self):
        m = machine(CouplingFFM.CFST_00)
        # Both cells start 0: aggressor holds 0, victim cannot hold 0.
        assert m.state == 1 and m.triggered

    def test_tick_applies_state_coupling(self):
        m = machine(CouplingFFM.CFST_10)
        m.on_write(AGG, 1)
        m.on_write(VIC, 1)   # not sensitive
        m.on_write(VIC, 0)   # sensitive -> flips at once
        assert m.state == 1


class TestCFid:
    def test_transition_write_flips_victim(self):
        m = machine(CouplingFFM.CFID_UP_1)
        m.on_write(VIC, 1)
        m.on_write(AGG, 0)
        m.on_write(AGG, 1)   # the up-transition
        assert m.state == 0 and m.triggered

    def test_non_transition_write_is_harmless(self):
        m = machine(CouplingFFM.CFID_UP_1)
        m.on_write(VIC, 1)
        m.on_write(AGG, 0)   # 0 -> 0, no transition
        assert m.state == 1

    def test_wrong_direction_is_harmless(self):
        m = machine(CouplingFFM.CFID_UP_1)
        m.on_write(AGG, 1)   # up-transition while victim not sensitive
        m.on_write(VIC, 1)
        m.on_write(AGG, 0)   # down transition: wrong direction
        assert m.state == 1

    def test_victim_not_sensitive(self):
        m = machine(CouplingFFM.CFID_UP_1)
        m.on_write(VIC, 0)
        m.on_write(AGG, 0)
        m.on_write(AGG, 1)
        assert m.state == 0


class TestCFrd:
    def test_deceptive_read(self):
        m = machine(CouplingFFM.CFRD_11)
        m.on_write(AGG, 1)
        m.on_write(VIC, 1)
        assert m.on_read(VIC, 1) == 1    # deceptively correct
        assert m.state == 0              # but the cell flipped
        assert m.on_read(VIC, 0) == 0

    def test_no_disturb_when_aggressor_differs(self):
        m = machine(CouplingFFM.CFRD_11)
        m.on_write(AGG, 0)
        m.on_write(VIC, 1)
        m.on_read(VIC, 1)
        assert m.state == 1


class TestIntegration:
    def test_validation(self):
        with pytest.raises(ValueError):
            CouplingFault(CouplingFFM.CFST_00, 0, 0, TOPO)
        with pytest.raises(IndexError):
            CouplingFault(CouplingFFM.CFST_00, 0, 99, TOPO)

    def test_faulty_memory_integration(self):
        fault = machine(CouplingFFM.CFID_UP_1)
        memory = FaultyMemory(TOPO, fault)
        memory.write(VIC, 1)
        memory.write(AGG, 0)
        memory.write(AGG, 1)
        assert memory.read(VIC) == 0

    def test_aggressor_reads_track_state(self):
        fault = machine(CouplingFFM.CFST_11)
        memory = FaultyMemory(TOPO, fault)
        memory.write(AGG, 1)
        assert memory.read(AGG) == 1

    def test_unrelated_cells_untouched(self):
        fault = machine(CouplingFFM.CFST_11)
        memory = FaultyMemory(TOPO, fault)
        memory.write(5, 1)
        assert memory.read(5) == 1
