"""Behavioural semantics of completed fault primitives."""

import pytest

from repro.core.fault_primitives import parse_fp
from repro.memory.array import Topology
from repro.memory.fault_machine import BehavioralFault, NodeKind

TOPO = Topology(4, 2)  # victim 0 shares column 0 with addresses 2, 4, 6
VICTIM = 0
MATE = 2       # same column as the victim
OTHER = 1      # different column


def machine(text, node_value=None, kind=None, victim=VICTIM):
    return BehavioralFault.from_fp(
        parse_fp(text), victim, TOPO, node_value=node_value, kind=kind
    )


class TestKindInference:
    def test_bitline(self):
        assert machine("<1v [w0BL] r1v/0/0>").kind is NodeKind.BITLINE

    def test_victim_history(self):
        assert machine("<[w1 w0] r0/1/1>").kind is NodeKind.VICTIM_HISTORY

    def test_static(self):
        assert machine("<0r0/0/1>").kind is NodeKind.STATIC


class TestBitlineReadFault:
    """<1v [w0BL] r1v/0/0> — the paper's Open 4 RDF1."""

    def test_triggers_after_arming_write(self):
        m = machine("<1v [w0BL] r1v/0/0>")
        m.on_write(VICTIM, 1)
        m.on_write(MATE, 0)          # completing w0 on the column
        assert m.on_read(VICTIM, 1) == 0
        assert m.state == 0 and m.triggered

    def test_rearming_with_w1_masks(self):
        m = machine("<1v [w0BL] r1v/0/0>")
        m.on_write(VICTIM, 1)        # the w1 drives the BL high
        assert m.on_read(VICTIM, 1) == 1
        assert not m.triggered

    def test_other_column_does_not_arm(self):
        m = machine("<1v [w0BL] r1v/0/0>")
        m.on_write(VICTIM, 1)
        m.on_write(OTHER, 0)         # different bit line
        assert m.on_read(VICTIM, 1) == 1

    def test_initial_floating_value_can_arm(self):
        m = machine("<1v [w0BL] r1v/0/0>", node_value=0)
        m.state = 1
        assert m.on_read(VICTIM, 1) == 0

    def test_unknown_node_never_triggers(self):
        m = machine("<1v [w0BL] r1v/0/0>", node_value=None)
        m.state = 1
        assert m.on_read(VICTIM, 1) == 1

    def test_read_restore_rearms(self):
        m = machine("<1v [w0BL] r1v/0/0>")
        m.on_write(MATE, 0)
        m.on_read(MATE, 1)           # the read restores 1 onto the BL
        m.state = 1
        assert m.on_read(VICTIM, 1) == 1

    def test_wrong_state_does_not_trigger(self):
        m = machine("<1v [w0BL] r1v/0/0>")
        m.on_write(VICTIM, 0)
        m.on_write(MATE, 0)
        assert m.on_read(VICTIM, 0) == 0


class TestBitlineIncorrectRead:
    """<0v [w1BL] r0v/0/1> — Open 8 IRF0: read lies, state intact."""

    def test_read_lies_state_survives(self):
        m = machine("<0v [w1BL] r0v/0/1>")
        m.on_write(VICTIM, 0)
        m.on_write(MATE, 1)
        assert m.on_read(VICTIM, 0) == 1
        assert m.state == 0


class TestBitlineWriteFault:
    """<1v [w1BL] w0v/1/-> — Open 5 TF-down."""

    def test_down_transition_fails_when_armed_high(self):
        m = machine("<1v [w1BL] w0v/1/->")
        m.on_write(VICTIM, 1)        # state 1, BL armed 1
        m.on_write(VICTIM, 0)        # the w0 fails
        assert m.state == 1 and m.triggered

    def test_down_transition_works_when_armed_low(self):
        m = machine("<1v [w1BL] w0v/1/->", node_value=0)
        m.state = 1
        m.on_write(VICTIM, 0)
        assert m.state == 0

    def test_read_back_detects(self):
        m = machine("<1v [w1BL] w0v/1/->")
        m.on_write(VICTIM, 1)
        m.on_write(VICTIM, 0)
        assert m.on_read(VICTIM, 0) == 1


class TestVictimHistoryFaults:
    """The cell-open family <[w1 w0] r0/1/1> and friends."""

    def test_pattern_then_read_triggers(self):
        m = machine("<[w1 w0] r0/1/1>")
        m.on_write(VICTIM, 1)
        m.on_write(VICTIM, 0)
        assert m.on_read(VICTIM, 0) == 1
        assert m.state == 1

    def test_extra_write_breaks_pattern(self):
        m = machine("<[w1 w0] r0/1/1>")
        m.on_write(VICTIM, 1)
        m.on_write(VICTIM, 0)
        m.on_write(VICTIM, 0)        # pattern is now (0, 0)
        assert m.on_read(VICTIM, 0) == 0

    def test_reads_extend_history(self):
        m = machine("<[w1 w0] r0/1/1>")
        m.on_write(VICTIM, 1)
        assert m.on_read(VICTIM, 1) == 1   # appends the restored 1
        m.on_write(VICTIM, 0)
        assert m.on_read(VICTIM, 0) == 1   # (1, 0) armed again

    def test_state_fault_applies_immediately(self):
        m = machine("<[w1 w0]/1/->")
        m.on_write(VICTIM, 1)
        m.on_write(VICTIM, 0)
        assert m.state == 1 and m.triggered

    def test_write_sensitized_history_fault(self):
        m = machine("<[w1 w0] w0/1/->")
        m.on_write(VICTIM, 1)
        m.on_write(VICTIM, 0)
        m.on_write(VICTIM, 0)        # the sensitizing w0 fails
        assert m.state == 1


class TestStaticFaults:
    """Floating word lines: memory operations cannot move the node."""

    def test_active_static_read_fault(self):
        m = machine("<0r0/0/1>", node_value=1)
        m.on_write(VICTIM, 0)
        assert m.on_read(VICTIM, 0) == 1
        assert m.state == 0

    def test_inactive_static_is_benign(self):
        m = machine("<0r0/0/1>", node_value=0)
        m.on_write(VICTIM, 0)
        assert m.on_read(VICTIM, 0) == 0

    def test_operations_never_move_the_node(self):
        m = machine("<0r0/0/1>", node_value=0)
        m.on_write(MATE, 1)
        m.on_write(VICTIM, 1)
        assert m.node_value == 0

    def test_state_fault_applies_on_tick(self):
        m = machine("<0/1/->", node_value=1, kind=NodeKind.STATIC)
        assert m.state == 0
        m.tick()
        assert m.state == 1 and m.triggered

    def test_inactive_state_fault_ignores_tick(self):
        m = machine("<0/1/->", node_value=0, kind=NodeKind.STATIC)
        m.tick()
        assert m.state == 0


class TestMisc:
    def test_initial_state_from_init(self):
        assert machine("<1v [w0BL] r1v/0/0>").state == 1
        assert machine("<0v [w1BL] r0v/1/1>").state == 0

    def test_mixed_completing_cells_rejected(self):
        with pytest.raises(ValueError):
            machine("<0v [w1BL w1] r0v/1/1>")

    def test_non_victim_read_passthrough(self):
        m = machine("<1v [w0BL] r1v/0/0>")
        assert m.on_read(MATE, 1) == 1
