"""Tests for the functional and electrical memory simulators."""

import pytest

from repro.circuit.defects import FloatingNode, OpenDefect, OpenLocation
from repro.core.fault_primitives import parse_fp
from repro.memory.array import Topology
from repro.memory.fault_machine import BehavioralFault
from repro.memory.simulator import ElectricalMemory, FaultyMemory

TOPO = Topology(4, 2)


class TestFaultyMemoryFaultFree:
    def test_behaves_like_plain_array(self):
        memory = FaultyMemory(TOPO)
        memory.write(3, 1)
        assert memory.read(3) == 1
        assert memory.read(0) == 0
        assert memory.size == 8

    def test_tick_is_noop(self):
        memory = FaultyMemory(TOPO)
        memory.tick()
        assert memory.read(0) == 0


class TestFaultyMemoryWithFault:
    def make(self, text, victim=0, node_value=None):
        fault = BehavioralFault.from_fp(
            parse_fp(text), victim, TOPO, node_value=node_value
        )
        return FaultyMemory(TOPO, fault)

    def test_victim_initial_state_propagates(self):
        memory = self.make("<1v [w0BL] r1v/0/0>")
        assert memory.array.read(0) == 1

    def test_fault_trigger_updates_array(self):
        memory = self.make("<1v [w0BL] r1v/0/0>")
        memory.write(0, 1)
        memory.write(2, 0)            # completing write, same column
        assert memory.read(0) == 0
        assert memory.array.read(0) == 0

    def test_non_victim_cells_unaffected(self):
        memory = self.make("<1v [w0BL] r1v/0/0>")
        memory.write(5, 1)
        assert memory.read(5) == 1

    def test_topology_mismatch_rejected(self):
        fault = BehavioralFault.from_fp(
            parse_fp("<1v [w0BL] r1v/0/0>"), 0, Topology(2, 2)
        )
        with pytest.raises(ValueError):
            FaultyMemory(TOPO, fault)

    def test_static_tick_applies_state_fault(self):
        fault = BehavioralFault.from_fp(
            parse_fp("<0/1/->"), 0, TOPO, node_value=1
        )
        memory = FaultyMemory(TOPO, fault)
        memory.tick()
        assert memory.read(0) == 1


class TestElectricalMemory:
    def test_fault_free_protocol(self):
        memory = ElectricalMemory.with_defect(n_rows=3)
        memory.write(0, 1)
        memory.write(2, 0)
        assert memory.read(0) == 1
        assert memory.read(2) == 0
        assert memory.size == 3

    def test_defect_and_floating_presets(self):
        memory = ElectricalMemory.with_defect(
            defect=OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e7),
            n_rows=3,
            floating={FloatingNode.BIT_LINE: 0.0},
        )
        memory.column.reset({0: 1})
        memory.column.set_floating_voltage(FloatingNode.BIT_LINE, 0.0)
        assert memory.read(0) == 0    # the RDF1 partial fault

    def test_tick_runs_precharge(self):
        memory = ElectricalMemory.with_defect(n_rows=2)
        memory.tick()                 # must not raise
        assert memory.read(0) == 0

    def test_address_bounds(self):
        memory = ElectricalMemory.with_defect(n_rows=2)
        with pytest.raises(IndexError):
            memory.read(2)
