"""Word-oriented memories, data backgrounds and the intra-word CF theorem."""

import pytest

from repro.core.coupling import CouplingFFM
from repro.core.fault_primitives import parse_fp
from repro.march.library import MARCH_C_MINUS, MATS_PLUS
from repro.memory.array import Topology
from repro.memory.coupling_machine import CouplingFault
from repro.memory.fault_machine import BehavioralFault
from repro.memory.simulator import FaultyMemory
from repro.memory.word_memory import (
    WordMemory,
    detects_word_fault,
    run_word_march,
    standard_backgrounds,
)


class TestBackgrounds:
    @pytest.mark.parametrize("width,expected", [
        (1, 1), (2, 2), (4, 3), (8, 4), (16, 5),
    ])
    def test_log2_plus_one(self, width, expected):
        assert len(standard_backgrounds(width)) == expected

    def test_solid_first(self):
        assert standard_backgrounds(4)[0] == (0, 0, 0, 0)

    def test_standard_set_for_width_4(self):
        assert standard_backgrounds(4) == (
            (0, 0, 0, 0), (0, 1, 0, 1), (0, 0, 1, 1)
        )

    def test_every_bit_pair_separated(self):
        """For any two positions, some background drives them apart."""
        for width in (2, 3, 4, 8):
            backgrounds = standard_backgrounds(width)
            for i in range(width):
                for j in range(i + 1, width):
                    assert any(b[i] != b[j] for b in backgrounds), (i, j)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            standard_backgrounds(0)


class TestWordMemory:
    def test_read_write_words(self):
        memory = WordMemory(n_words=3, width=4)
        memory.write_word(1, (1, 0, 1, 1))
        assert memory.read_word(1) == (1, 0, 1, 1)
        assert memory.read_word(0) == (0, 0, 0, 0)

    def test_width_checked(self):
        memory = WordMemory(2, 4)
        with pytest.raises(ValueError):
            memory.write_word(0, (1, 0))

    def test_topology_checked(self):
        with pytest.raises(ValueError):
            WordMemory(2, 4, FaultyMemory(Topology(3, 3)))

    def test_bit_fault_visible_through_words(self):
        topo = Topology(3, 4)
        fault = BehavioralFault.from_fp(
            parse_fp("<0r0/0/1>"), topo.address_of(1, 2), topo, node_value=1
        )
        memory = WordMemory(3, 4, FaultyMemory(topo, fault))
        memory.write_word(1, (0, 0, 0, 0))
        assert memory.read_word(1) == (0, 0, 1, 0)


class TestWordMarch:
    def test_fault_free_passes_all_backgrounds(self):
        for background in standard_backgrounds(4):
            memory = WordMemory(3, 4)
            result = run_word_march(MATS_PLUS, memory, background)
            assert not result.detected

    def test_background_width_checked(self):
        with pytest.raises(ValueError):
            run_word_march(MATS_PLUS, WordMemory(2, 4), (0, 1))

    def test_operation_count_is_word_based(self):
        memory = WordMemory(3, 4)
        result = run_word_march(MATS_PLUS, memory, (0, 0, 0, 0))
        assert result.operations == MATS_PLUS.ops_per_address * 3


class TestIntraWordCouplingTheorem:
    """Intra-word CFs need the background set; solid alone is blind."""

    WORDS, WIDTH = 3, 4
    TOPO = Topology(3, 4)

    def make(self, ffm, word=1, agg_bit=1, vic_bit=2):
        def factory():
            fault = CouplingFault(
                ffm,
                self.TOPO.address_of(word, agg_bit),
                self.TOPO.address_of(word, vic_bit),
                self.TOPO,
            )
            return FaultyMemory(self.TOPO, fault)
        return factory

    def test_solid_background_misses_cfst01(self):
        """CFst<0;1> needs aggressor 0 / victim 1 — solid never does that."""
        factory = self.make(CouplingFFM.CFST_01)
        assert not detects_word_fault(
            MARCH_C_MINUS, factory, self.WORDS, self.WIDTH,
            backgrounds=[(0, 0, 0, 0)],
        )

    def test_standard_backgrounds_catch_it(self):
        factory = self.make(CouplingFFM.CFST_01)
        assert detects_word_fault(
            MARCH_C_MINUS, factory, self.WORDS, self.WIDTH
        )

    @pytest.mark.parametrize("ffm", [
        CouplingFFM.CFST_00, CouplingFFM.CFST_01,
        CouplingFFM.CFST_10, CouplingFFM.CFST_11,
    ])
    def test_all_state_intra_word_cfs(self, ffm):
        factory = self.make(ffm)
        assert detects_word_fault(
            MARCH_C_MINUS, factory, self.WORDS, self.WIDTH
        )

    def test_intra_word_cfid_masked_when_victim_written_after(self):
        """A word write rewrites the victim right after the aggressor's
        transition disturbed it, erasing the evidence — intra-word CFid
        with victim bit index above the aggressor's is undetectable by
        write-based sensitization (the classical word-oriented caveat)."""
        factory = self.make(CouplingFFM.CFID_UP_0, agg_bit=1, vic_bit=2)
        assert not detects_word_fault(
            MARCH_C_MINUS, factory, self.WORDS, self.WIDTH
        )

    def test_intra_word_cfid_caught_when_victim_written_first(self):
        factory = self.make(CouplingFFM.CFID_UP_0, agg_bit=2, vic_bit=1)
        assert detects_word_fault(
            MARCH_C_MINUS, factory, self.WORDS, self.WIDTH
        )

    def test_adjacent_bit_pairs_all_covered(self):
        for vic_bit in range(self.WIDTH):
            for agg_bit in range(self.WIDTH):
                if agg_bit == vic_bit:
                    continue
                factory = self.make(
                    CouplingFFM.CFST_10, agg_bit=agg_bit, vic_bit=vic_bit
                )
                assert detects_word_fault(
                    MARCH_C_MINUS, factory, self.WORDS, self.WIDTH
                ), (agg_bit, vic_bit)
