"""Shared fixtures for the sweep-service tests.

The service switches process-global telemetry on; every test in this
package restores the disabled/empty state afterwards so the rest of the
suite (which asserts telemetry-off behaviour) is unaffected.

``register_experiment`` installs throwaway experiment profiles into
:data:`repro.service.jobs.SERVICE_EXPERIMENTS` so lifecycle tests can
run instant (or deliberately slow/failing) jobs without touching the
electrical solver.
"""

import threading
from types import SimpleNamespace

import pytest

from repro import telemetry
from repro.experiments.reporting import ExperimentReport
from repro.service.jobs import SERVICE_EXPERIMENTS, ExperimentProfile


@pytest.fixture(autouse=True)
def _telemetry_clean():
    yield
    telemetry.disable()
    telemetry.reset()


def make_report(title="stub", block="stub output"):
    report = ExperimentReport(title)
    report.add_block(block)
    report.claim("stub claim", "paper", "measured", True)
    return report


@pytest.fixture
def register_experiment(monkeypatch):
    """Install a stub experiment; returns (name, call-counter record)."""

    def register(name, runner=None, block="stub output"):
        calls = SimpleNamespace(count=0, lock=threading.Lock())

        def default_runner(spec, resilience):
            with calls.lock:
                calls.count += 1
            return SimpleNamespace(
                report=make_report(title=name, block=block)
            )

        monkeypatch.setitem(
            SERVICE_EXPERIMENTS,
            name,
            ExperimentProfile(name, runner or default_runner),
        )
        return calls

    return register
