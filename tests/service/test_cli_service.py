"""CLI wiring: --version plus the serve/submit subcommands."""

import json
import socket
import uuid

import pytest

from repro import __version__
from repro.cli import main
from repro.service import SweepService


class TestVersionFlag:
    def test_version_exits_zero_with_the_package_version(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro-partial-faults {__version__}"

    def test_serve_and_submit_share_the_version(self, capsys):
        for argv in (["serve", "--version"], ["submit", "--version"]):
            with pytest.raises(SystemExit) as exit_info:
                main(argv)
            assert exit_info.value.code == 0
            out = capsys.readouterr().out
            assert out.strip() == f"repro-partial-faults {__version__}"


class TestSubmitCommand:
    @pytest.fixture
    def stub_name(self, register_experiment):
        # A unique name keeps parallel test runs from ever colliding on
        # a real experiment's content address.
        name = "zz-" + uuid.uuid4().hex[:6]
        register_experiment(name, block="cli stub output")
        return name

    def test_submit_wait_prints_the_report(
        self, stub_name, capsys, tmp_path
    ):
        json_path = str(tmp_path / "result.json")
        with SweepService(port=0) as service:
            rc = main([
                "submit", stub_name, "--url", service.url,
                "--wait", "--timeout", "30", "--poll", "0.05",
                "--json", json_path,
            ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "cli stub output" in captured.out
        # Report then a blank line — the classic CLI's print(report);
        # print() shape, so piped output is interchangeable.
        assert captured.out.endswith("claims hold --\n\n")
        assert "[submit] job " in captured.err
        assert "done" in captured.err
        with open(json_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["kind"] == "job-result"
        assert payload["experiment"] == stub_name

    def test_submit_without_wait_prints_the_job_id(self, stub_name, capsys):
        with SweepService(port=0) as service:
            rc = main(["submit", stub_name, "--url", service.url])
            assert rc == 0
            captured = capsys.readouterr()
            job_id = captured.out.strip()
            assert len(job_id) == 12 and int(job_id, 16) >= 0
            assert job_id in captured.err

    def test_submit_follow_streams_progress_then_report(
        self, stub_name, capsys
    ):
        with SweepService(port=0) as service:
            rc = main([
                "submit", stub_name, "--url", service.url,
                "--follow", "--timeout", "30", "--poll", "0.05",
            ])
        assert rc == 0
        captured = capsys.readouterr()
        # --follow implies --wait: the report still lands on stdout
        assert "cli stub output" in captured.out
        follow_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("[follow]")
        ]
        assert follow_lines, "no live progress reached stderr"
        assert any("finished" in line for line in follow_lines)

    def test_resubmission_reports_the_dedup(self, stub_name, capsys):
        with SweepService(port=0) as service:
            args = [
                "submit", stub_name, "--url", service.url,
                "--wait", "--timeout", "30", "--poll", "0.05",
            ]
            assert main(args) == 0
            first = capsys.readouterr()
            assert main(args) == 0
            second = capsys.readouterr()
        assert "deduplicated into existing job" not in first.err
        assert "deduplicated into existing job" in second.err
        assert second.out == first.out  # byte-identical served report

    def test_invalid_spec_exits_2(self, capsys):
        # fp-space has no sweep grid, so --n-r is a spec error the
        # client catches before ever talking to a server.
        rc = main(["submit", "fp-space", "--url",
                   "http://127.0.0.1:9", "--n-r", "4"])
        assert rc == 2
        assert "invalid spec" in capsys.readouterr().err

    def test_unreachable_service_exits_3(self, capsys):
        rc = main(["submit", "march", "--url", "http://127.0.0.1:9"])
        assert rc == 3
        assert "cannot reach sweep service" in capsys.readouterr().err


class TestServeCommand:
    def test_bad_arguments_exit_2(self):
        for argv in (
            ["serve", "--queue-limit", "0"],
            ["serve", "--workers", "0"],
            ["serve", "--store-max", "0"],
            ["serve", "--store-ttl", "0"],
            ["serve", "--port", "-1"],
        ):
            with pytest.raises(SystemExit) as exit_info:
                main(argv)
            assert exit_info.value.code == 2

    def test_occupied_port_exits_3(self, capsys):
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            rc = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        assert rc == 3
        assert "cannot bind" in capsys.readouterr().err
