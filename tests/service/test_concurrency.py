"""Multi-worker scheduler behaviour: attribution, hygiene, executors.

These tests exercise the service under *concurrency*: several scheduler
workers executing overlapping jobs, on both executors.  The process-
executor tests rely on the pool being forked at ``scheduler.start()``
— stub experiments registered before that moment are inherited by the
workers; their in-worker side effects (call counters) are invisible to
the parent, so assertions go through the store payloads and the job
event trail instead.
"""

import json
import multiprocessing
import os
import threading
import time
from types import SimpleNamespace

import pytest

from repro.parallel import Resilience, RetryPolicy, parallel_map_ex
from repro.service.jobs import JobSpec, JobState, result_payload
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ResultStore

from .conftest import make_report

#: Stub experiments reach pool workers only as forked copies of the
#: monkeypatched parent (spawn re-imports the pristine registry).
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="stub-experiment inheritance requires the fork start method",
)


def _wait_terminal(job, timeout=20.0):
    deadline = time.monotonic() + timeout
    while not job.state.terminal and time.monotonic() < deadline:
        time.sleep(0.01)
    assert job.state.terminal, f"job stuck in {job.state}"


def _wait_running(job, timeout=5.0):
    deadline = time.monotonic() + timeout
    while job.state is JobState.QUEUED and time.monotonic() < deadline:
        time.sleep(0.01)
    assert job.state is JobState.RUNNING


def _resilience_events(job):
    return [e for e in job.events if e["event"] == "resilience"]


def _retrying_runner(n_retries, barrier=None, rendezvous=None):
    """A stub runner that injects exactly ``n_retries`` unit retries.

    ``barrier`` (same-process overlap) or ``rendezvous`` (a directory
    used as a cross-process barrier: touch my flag, wait for all flags)
    makes two such runners demonstrably concurrent before the retries
    happen.
    """

    def runner(spec, resilience):
        if barrier is not None:
            barrier.wait(timeout=10)
        if rendezvous is not None:
            me, everyone = rendezvous
            open(me, "w").close()
            deadline = time.monotonic() + 10
            while not all(os.path.exists(f) for f in everyone):
                if time.monotonic() > deadline:
                    raise TimeoutError("rendezvous never completed")
                time.sleep(0.01)
        attempts = {"left": n_retries}

        def flaky(payload):
            if attempts["left"] > 0:
                attempts["left"] -= 1
                raise ValueError("transient")
            return payload * 2

        outcome = parallel_map_ex(
            flaky, [1, 2], jobs=1,
            policy=RetryPolicy(max_retries=max(1, n_retries), backoff=0.0),
        )
        assert outcome.results == [2, 4]
        return SimpleNamespace(report=make_report(title=spec.experiment))

    return runner


class TestResilienceAttribution:
    def test_concurrent_jobs_see_only_their_own_retries(
        self, register_experiment
    ):
        # Two jobs overlap on two worker threads; one injects exactly two
        # retries, the other none.  With the per-thread ledger each job's
        # resilience event carries precisely its own counts — the shared
        # module-global log used to let them leak into each other.
        barrier = threading.Barrier(2)
        register_experiment(
            "svc-retry", runner=_retrying_runner(2, barrier=barrier)
        )
        register_experiment(
            "svc-clean", runner=_retrying_runner(0, barrier=barrier)
        )
        queue, store = JobQueue(), ResultStore()
        scheduler = Scheduler(queue, store, workers=2, poll_interval=0.02)
        scheduler.start()
        try:
            noisy, _ = queue.submit(JobSpec("svc-retry"))
            clean, _ = queue.submit(JobSpec("svc-clean"))
            _wait_terminal(noisy)
            _wait_terminal(clean)
        finally:
            scheduler.stop()
        assert noisy.state is JobState.DONE
        assert clean.state is JobState.DONE
        noisy_events = _resilience_events(noisy)
        assert len(noisy_events) == 1
        assert noisy_events[0]["retries"] == 2
        assert noisy_events[0]["failures"] == 0
        # The clean job must not inherit the other job's recoveries.
        assert _resilience_events(clean) == []


class TestStopAndHeartbeatHygiene:
    def test_restart_with_fewer_workers_reports_only_live(
        self, register_experiment
    ):
        register_experiment("svc-hb")
        queue, store = JobQueue(), ResultStore()
        scheduler = Scheduler(queue, store, workers=3, poll_interval=0.02)
        scheduler.start()
        try:
            deadline = time.monotonic() + 5
            while len(scheduler.heartbeats()) < 3:
                assert time.monotonic() < deadline, "workers never beat"
                time.sleep(0.01)
            assert scheduler.stop() == []
            # All heartbeat entries die with their threads.
            assert scheduler.heartbeats() == {}
            scheduler.workers = 1
            scheduler.start()
            deadline = time.monotonic() + 5
            while len(scheduler.heartbeats()) < 1:
                assert time.monotonic() < deadline, "worker never beat"
                time.sleep(0.01)
            # The restart must not resurrect the other two workers'
            # stale entries as ever-growing /healthz ages.
            assert len(scheduler.heartbeats()) == 1
        finally:
            scheduler.stop()

    def test_stop_shares_one_deadline_across_workers(
        self, register_experiment
    ):
        release = threading.Event()

        def blocker(spec, resilience):
            release.wait(30)
            return SimpleNamespace(report=make_report("blocker"))

        register_experiment("svc-stuck", runner=blocker)
        queue, store = JobQueue(), ResultStore()
        scheduler = Scheduler(queue, store, workers=4, poll_interval=0.02)
        scheduler.start()
        job, _ = queue.submit(JobSpec("svc-stuck"))
        _wait_running(job)
        started = time.monotonic()
        stragglers = scheduler.stop(timeout=0.4)
        elapsed = time.monotonic() - started
        release.set()
        # One worker is wedged in the blocking job; the other three are
        # idle.  The old per-thread join budget made this take up to
        # workers * timeout (1.6 s) — the shared deadline caps the whole
        # shutdown near the timeout itself, and names the stuck worker.
        assert elapsed < 1.2, f"stop took {elapsed:.2f}s for 0.4s budget"
        assert len(stragglers) == 1
        assert stragglers[0].startswith("repro-scheduler-")
        assert scheduler.heartbeats() == {}
        _wait_terminal(job)  # the straggler finishes once released

    def test_clean_stop_reports_no_stragglers(self, register_experiment):
        register_experiment("svc-quick")
        queue, store = JobQueue(), ResultStore()
        scheduler = Scheduler(queue, store, workers=2, poll_interval=0.02)
        scheduler.start()
        job, _ = queue.submit(JobSpec("svc-quick"))
        _wait_terminal(job)
        assert scheduler.stop() == []


@fork_only
class TestProcessExecutor:
    def test_job_runs_in_a_worker_process(self, register_experiment):
        # The stub is registered before start(), so the forked pool
        # workers inherit it; the pid baked into the report proves the
        # job really left this process.
        def runner(spec, resilience):
            return SimpleNamespace(
                report=make_report(title="svc-proc", block=f"pid={os.getpid()}")
            )

        register_experiment("svc-proc", runner=runner)
        queue, store = JobQueue(), ResultStore()
        scheduler = Scheduler(
            queue, store, workers=1, poll_interval=0.02, executor="process"
        )
        scheduler.start()
        try:
            job, _ = queue.submit(JobSpec("svc-proc"))
            _wait_terminal(job)
        finally:
            scheduler.stop()
        assert job.state is JobState.DONE
        payload = store.get(job.address)
        assert payload is not None
        worker_pid = int(payload["report"].split("pid=")[1].split()[0])
        assert worker_pid != os.getpid()

    def test_concurrent_process_jobs_attribute_retries(
        self, register_experiment, tmp_path
    ):
        # Cross-process rendezvous: each job touches its flag and waits
        # for both, so the retries provably happen while the other job
        # is in flight — in a different worker process.
        flags = [str(tmp_path / "a.flag"), str(tmp_path / "b.flag")]
        register_experiment(
            "svc-proc-retry",
            runner=_retrying_runner(2, rendezvous=(flags[0], flags)),
        )
        register_experiment(
            "svc-proc-clean",
            runner=_retrying_runner(0, rendezvous=(flags[1], flags)),
        )
        queue, store = JobQueue(), ResultStore()
        scheduler = Scheduler(
            queue, store, workers=2, poll_interval=0.02, executor="process"
        )
        scheduler.start()
        try:
            noisy, _ = queue.submit(JobSpec("svc-proc-retry"))
            clean, _ = queue.submit(JobSpec("svc-proc-clean"))
            _wait_terminal(noisy)
            _wait_terminal(clean)
        finally:
            scheduler.stop()
        assert noisy.state is JobState.DONE
        assert clean.state is JobState.DONE
        noisy_events = _resilience_events(noisy)
        assert len(noisy_events) == 1
        assert noisy_events[0]["retries"] == 2
        assert _resilience_events(clean) == []
        # Progress events crossed the process boundary: the fan-out's
        # unit milestones (and the injected retries) reached the job's
        # event ring through the executor's queue.
        kinds = [
            e.get("kind") for e in noisy.events if e["event"] == "progress"
        ]
        assert "unit.retry" in kinds
        assert "unit.done" in kinds

    def test_error_type_crosses_the_process_boundary(
        self, register_experiment
    ):
        def exploding(spec, resilience):
            raise RuntimeError("kapow")

        register_experiment("svc-proc-boom", runner=exploding)
        queue, store = JobQueue(), ResultStore()
        scheduler = Scheduler(
            queue, store, workers=1, poll_interval=0.02, executor="process"
        )
        scheduler.start()
        try:
            job, _ = queue.submit(JobSpec("svc-proc-boom"))
            _wait_terminal(job)
        finally:
            scheduler.stop()
        assert job.state is JobState.FAILED
        assert job.error_type == "RuntimeError"
        assert job.error == "kapow"
        error_events = [e for e in job.events if e["event"] == "error"]
        assert error_events and error_events[0]["error_type"] == "RuntimeError"
        assert "RuntimeError" in (error_events[0].get("traceback") or "")

    def test_invalid_executor_name_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            Scheduler(JobQueue(), ResultStore(), executor="mainframe")


@pytest.mark.slow
class TestExecutorEquivalence:
    def test_table1_payload_identical_across_executors(self):
        # The acceptance criterion: one coarse real Table 1 computation,
        # byte-identical whether run directly, through the thread
        # executor, or through a worker process.
        spec = JobSpec("table1", opens=("CELL",), n_r=3, n_u=3).validate()
        profile = spec.profile()
        direct = json.dumps(
            result_payload(spec, profile.run(spec, Resilience())),
            sort_keys=True,
        )
        served = {}
        for kind in ("thread", "process"):
            queue, store = JobQueue(), ResultStore()
            scheduler = Scheduler(
                queue, store, workers=1, poll_interval=0.02, executor=kind
            )
            scheduler.start()
            try:
                job, _ = queue.submit(spec)
                _wait_terminal(job, timeout=120.0)
            finally:
                scheduler.stop()
            assert job.state is JobState.DONE, job.error
            served[kind] = json.dumps(store.get(job.address), sort_keys=True)
        assert served["thread"] == direct
        assert served["process"] == direct
