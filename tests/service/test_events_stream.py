"""Live progress: SSE streaming, long-polling, and health reporting."""

import time
from types import SimpleNamespace

import pytest

from repro.service import (
    ServiceClient, ServiceResponseError, SweepService,
)
from repro.service import jobs as jobs_module

from .conftest import make_report


def _service(**kwargs):
    kwargs.setdefault("port", 0)
    return SweepService(**kwargs)


def _slow_runner(delay):
    def runner(spec, resilience):
        time.sleep(delay)
        return SimpleNamespace(report=make_report(title="slow"))
    return runner


class TestJsonPolling:
    def test_page_has_cursor_state_and_ordered_seqs(self, register_experiment):
        register_experiment("evt-poll")
        with _service() as service:
            client = ServiceClient(service.url)
            job_id = client.submit({"experiment": "evt-poll"})["job"]["id"]
            client.wait(job_id, timeout=10.0)
            page = client.events(job_id)
            seqs = [e["seq"] for e in page["events"]]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            names = [e["event"] for e in page["events"]]
            assert names[0] == "queued" and names[-1] == "finished"
            assert page["terminal"] is True
            assert page["state"] == "done"
            assert page["overflow"] is False
            assert page["next"] == seqs[-1]
            # resuming from the cursor returns nothing new
            again = client.events(job_id, after=page["next"])
            assert again["events"] == [] and again["terminal"] is True

    def test_long_poll_wakes_on_new_event(self, register_experiment):
        register_experiment("evt-wait", runner=_slow_runner(0.4))
        with _service() as service:
            client = ServiceClient(service.url)
            job_id = client.submit({"experiment": "evt-wait"})["job"]["id"]
            # drain what exists now, then block for the next event
            first = client.events(job_id)
            start = time.monotonic()
            page = client.events(job_id, after=first["next"], wait=10.0)
            elapsed = time.monotonic() - start
            assert page["events"], "long-poll returned without an event"
            assert elapsed < 10.0
            client.wait(job_id, timeout=10.0)

    def test_unknown_job_is_404(self):
        with _service() as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceResponseError) as err:
                client.events("j-nope")
            assert err.value.status == 404


class TestSseStreaming:
    def test_stream_yields_ordered_events_then_ends(self, register_experiment):
        register_experiment("evt-sse", runner=_slow_runner(0.2))
        with _service() as service:
            client = ServiceClient(service.url)
            job_id = client.submit({"experiment": "evt-sse"})["job"]["id"]
            received = list(client.stream_events(job_id))
            names = [e["event"] for e in received]
            assert "queued" in names and "started" in names
            assert names[-1] == "finished"
            seqs = [e["seq"] for e in received]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_last_event_id_resumes_mid_stream(self, register_experiment):
        register_experiment("evt-resume")
        with _service() as service:
            client = ServiceClient(service.url)
            job_id = client.submit({"experiment": "evt-resume"})["job"]["id"]
            client.wait(job_id, timeout=10.0)
            everything = list(client.stream_events(job_id))
            assert len(everything) >= 2
            cutoff = everything[0]["seq"]
            resumed = list(client.stream_events(job_id, after=cutoff))
            assert [e["seq"] for e in resumed] == [
                e["seq"] for e in everything if e["seq"] > cutoff
            ]

    def test_overflow_marker_on_ring_buffer_overrun(
        self, register_experiment, monkeypatch
    ):
        monkeypatch.setattr(jobs_module, "EVENT_BUFFER", 3)
        register_experiment("evt-overflow", runner=_slow_runner(0.8))
        with _service() as service:
            client = ServiceClient(service.url)
            job_id = client.submit({"experiment": "evt-overflow"})["job"]["id"]
            job = service.queue.get(job_id)
            for index in range(10):
                service.queue.emit(job, "spam", index=index)
            received = list(client.stream_events(job_id))
            assert received[0]["event"] == "overflow"
            # more events (and drops) can land after the marker snapshot
            assert 0 < received[0]["dropped"] <= job.events_dropped
            # only the surviving tail follows the marker, still ordered
            seqs = [e["seq"] for e in received[1:]]
            assert min(seqs) > received[0]["dropped"]
            assert seqs == sorted(seqs)
            assert received[-1]["event"] == "finished"

    def test_plain_get_still_returns_json(self, register_experiment):
        # without an SSE Accept header the same path long-polls JSON
        register_experiment("evt-nego")
        with _service() as service:
            client = ServiceClient(service.url)
            job_id = client.submit({"experiment": "evt-nego"})["job"]["id"]
            client.wait(job_id, timeout=10.0)
            page = client.events(job_id)
            assert isinstance(page, dict) and "events" in page


class TestMetricsExposition:
    def test_prometheus_scrape_over_http(self, register_experiment):
        register_experiment("evt-prom")
        with _service() as service:
            client = ServiceClient(service.url)
            job_id = client.submit({"experiment": "evt-prom"})["job"]["id"]
            client.wait(job_id, timeout=10.0)
            text = client.metrics_prometheus()
            assert "# TYPE repro_service_http_requests_total counter" in text
            assert "# TYPE repro_service_jobs_submitted_total counter" in text
            # JSON stays the default for existing clients
            snapshot = client.metrics()
            assert "counters" in snapshot


class TestHealth:
    def test_healthz_reports_store_and_scheduler(self, register_experiment):
        register_experiment("evt-health")
        with _service(workers=2) as service:
            client = ServiceClient(service.url)
            health = client.healthz()
            assert health["status"] == "ok"
            store = health["store"]
            assert store["entries"] == 0
            assert store["max_entries"] == 128
            assert store["evictions"] == 0 and store["expired"] == 0
            scheduler = health["scheduler"]
            assert scheduler["alive"] is True
            assert len(scheduler["heartbeat_age_seconds"]) == 2

    def test_healthz_503_when_all_workers_dead(self, register_experiment):
        register_experiment("evt-dead")
        with _service(workers=1) as service:
            client = ServiceClient(service.url)
            assert client.healthz()["status"] == "ok"
            service.scheduler.stop()
            with pytest.raises(ServiceResponseError) as err:
                client.healthz()
            assert err.value.status == 503
            assert err.value.payload["status"] == "dead-workers"
            assert err.value.payload["scheduler"]["alive"] is False

    def test_store_eviction_counter_surfaces(self, register_experiment):
        register_experiment("evt-a", block="a")
        register_experiment("evt-b", block="b")
        with _service(store_max=1) as service:
            client = ServiceClient(service.url)
            for name in ("evt-a", "evt-b"):
                job_id = client.submit({"experiment": name})["job"]["id"]
                client.wait(job_id, timeout=10.0)
            assert client.healthz()["store"]["evictions"] == 1
