"""JobSpec content addressing, validation, and result payloads."""

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.circuit.defects import OpenLocation
from repro.errors import SpecValidationError
from repro.service.jobs import JobSpec, JobState, result_payload

from .conftest import make_report


class TestContentAddress:
    def test_explicit_defaults_address_like_omitted(self):
        implicit = JobSpec("table1")
        explicit = JobSpec(
            "table1",
            opens=tuple(sorted(OpenLocation.__members__)),
            n_r=16,
            n_u=12,
            max_extra_ops=3,
        )
        assert implicit.address == explicit.address

    def test_execution_hints_do_not_change_the_address(self):
        spec = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        assert spec.with_jobs(8).address == spec.address
        assert replace(spec, batch_u=False).address == spec.address

    def test_grid_change_changes_the_address(self):
        base = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        assert replace(base, n_r=5).address != base.address
        assert replace(base, n_u=4).address != base.address

    def test_opens_order_is_canonicalized(self):
        a = JobSpec("table1", opens=("CELL", "WORD_LINE"), n_r=4, n_u=3)
        b = JobSpec("table1", opens=("WORD_LINE", "CELL"), n_r=4, n_u=3)
        assert a.address == b.address

    def test_result_shaping_fields_change_the_address(self):
        base = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        assert replace(base, max_extra_ops=1).address != base.address
        assert replace(base, check_marginal=True).address != base.address
        assert (
            replace(base, guard_policy="quarantine").address != base.address
        )

    def test_experiments_address_differently(self):
        assert JobSpec("fig3").address != JobSpec("fig4").address
        assert JobSpec("march").address != JobSpec("fp-space").address

    def test_grid_signatures_are_per_location(self):
        spec = JobSpec("table1", opens=("CELL", "WORD_LINE"), n_r=4, n_u=3)
        signatures = spec.grid_signatures()
        assert set(signatures) == {"CELL", "WORD_LINE"}
        # Different natural resistance ranges -> different grid digests.
        assert signatures["CELL"] != signatures["WORD_LINE"]

    def test_non_sweep_experiments_have_no_grids(self):
        assert JobSpec("march").grid_signatures() == {}
        assert "grids" not in JobSpec("march").canonical()


class TestValidation:
    def test_unknown_experiment(self):
        with pytest.raises(SpecValidationError):
            JobSpec("table9").validate()

    def test_opens_rejected_on_non_table1(self):
        with pytest.raises(SpecValidationError):
            JobSpec("fig3", opens=("CELL",)).validate()

    def test_unknown_open_location(self):
        with pytest.raises(SpecValidationError):
            JobSpec("table1", opens=("CELLAR",)).validate()

    def test_grid_rejected_on_non_sweep(self):
        with pytest.raises(SpecValidationError):
            JobSpec("march", n_r=8).validate()

    def test_grid_axis_needs_two_points(self):
        with pytest.raises(SpecValidationError):
            JobSpec("table1", n_r=1).validate()

    def test_completion_fields_are_table1_only(self):
        with pytest.raises(SpecValidationError):
            JobSpec("fig3", max_extra_ops=2).validate()
        with pytest.raises(SpecValidationError):
            JobSpec("fig3", check_marginal=True).validate()

    def test_bad_guard_policy(self):
        with pytest.raises(SpecValidationError):
            JobSpec("table1", guard_policy="panic").validate()

    def test_bad_jobs(self):
        with pytest.raises(SpecValidationError):
            JobSpec("table1", jobs=0).validate()

    def test_valid_spec_validates_to_itself(self):
        spec = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        assert spec.validate() is spec


class TestJsonRoundTrip:
    def test_roundtrip(self):
        spec = JobSpec(
            "table1", opens=("CELL",), n_r=4, n_u=3, max_extra_ops=2,
            guard_policy="quarantine", check_marginal=True, jobs=2,
            batch_u=False,
        )
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecValidationError):
            JobSpec.from_json({"experiment": "march", "n_rows": 4})

    def test_missing_experiment_rejected(self):
        with pytest.raises(SpecValidationError):
            JobSpec.from_json({"opens": ["CELL"]})

    def test_non_object_body_rejected(self):
        with pytest.raises(SpecValidationError):
            JobSpec.from_json(["table1"])

    def test_bad_opens_type_rejected(self):
        with pytest.raises(SpecValidationError):
            JobSpec.from_json({"experiment": "table1", "opens": "CELL"})

    def test_from_json_validates(self):
        with pytest.raises(SpecValidationError):
            JobSpec.from_json({"experiment": "table1", "n_r": 1})


class TestJobState:
    def test_terminal_states(self):
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal


class TestResultPayload:
    def test_report_and_claims(self):
        spec = JobSpec("fp-space")
        report = make_report(title="fp-space", block="hello")
        payload = result_payload(spec, SimpleNamespace(report=report))
        assert payload["format"] == "repro-v1"
        assert payload["kind"] == "job-result"
        assert payload["experiment"] == "fp-space"
        assert payload["address"] == spec.address
        assert payload["report"] == report.render()
        assert payload["claims"] == [
            {
                "name": "stub claim", "paper": "paper",
                "measured": "measured", "holds": True,
            }
        ]
        assert payload["holding"] == 1 and payload["all_hold"] is True

    def test_timing_block_is_stripped_and_restored(self):
        spec = JobSpec("fp-space")
        report = make_report()
        timing = {"experiment": "fp-space", "seconds": 1.0}
        report.timing = timing
        payload = result_payload(spec, SimpleNamespace(report=report))
        assert "-- timing:" not in payload["report"]
        assert report.timing is timing  # restored for the caller

    def test_table1_rows_ride_along(self):
        spec = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        row = SimpleNamespace(
            ffm_sim=SimpleNamespace(name="RDF0"),
            ffm_com=SimpleNamespace(name="TF1"),
            open_number=3,
            completed=None,
            completed_text="Not possible",
            floating="CELL",
            marginal=False,
        )
        payload = result_payload(
            spec, SimpleNamespace(report=make_report(), rows=[row])
        )
        assert payload["rows"] == [
            {
                "ffm_sim": "RDF0", "ffm_com": "TF1", "open": 3,
                "completed": None, "completed_text": "Not possible",
                "floating": "CELL", "marginal": False,
            }
        ]
        assert "quarantined" not in payload


class TestTechnologyOverrides:
    """Stress-corner technology overrides in the content address.

    The campaign subsystem (docs/CAMPAIGNS.md) relies on two dedup
    properties: distinct corners must NEVER collapse onto each other,
    and identical corners (however spelled) must always dedupe.
    """

    CORNER = {"vdd": 2.64, "v_precharge": 1.32, "v_reference": 1.12,
              "v_wl_on": 2.64}

    def test_distinct_corners_never_dedupe(self):
        base = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        low_vdd = replace(base, technology=self.CORNER)
        hot = replace(base, technology={"temperature": 85.0})
        fast = replace(base, technology={"t_sense": 10e-9})
        addresses = {
            base.address, low_vdd.address, hot.address, fast.address
        }
        assert len(addresses) == 4

    def test_identical_corners_dedupe_regardless_of_spelling(self):
        base = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        from_dict = replace(base, technology=self.CORNER)
        from_pairs = replace(
            base,
            technology=tuple(reversed(sorted(self.CORNER.items()))),
        )
        assert from_dict.address == from_pairs.address
        assert from_dict.technology == from_pairs.technology

    def test_nominal_corner_addresses_like_a_plain_spec(self):
        # None and {} both mean "no overrides": the nominal corner of a
        # campaign is the same content address as the direct job, which
        # is what makes its report byte-comparable.
        base = JobSpec("table1", opens=("CELL",), n_r=4, n_u=3)
        nominal = replace(base, technology={})
        assert nominal.technology is None
        assert nominal.address == base.address
        assert "technology" not in base.canonical()

    def test_roundtrip_preserves_the_address(self):
        spec = JobSpec(
            "table1", opens=("CELL",), n_r=4, n_u=3,
            technology=self.CORNER,
        ).validate()
        again = JobSpec.from_json(spec.to_json())
        assert again.address == spec.address
        assert again.technology == spec.technology

    def test_unknown_field_rejected(self):
        spec = JobSpec("table1", technology={"not_a_field": 1.0})
        with pytest.raises(SpecValidationError):
            spec.validate()

    def test_unphysical_override_fails_fast(self):
        # v_precharge above the (scaled) rail: Technology.scaled()
        # re-validates, so the bad corner dies at validate() time.
        spec = JobSpec("table1", technology={"vdd": 1.0})
        with pytest.raises(SpecValidationError):
            spec.validate()

    def test_non_numeric_value_rejected(self):
        spec = JobSpec("table1", technology={"vdd": True})
        with pytest.raises(SpecValidationError):
            spec.validate()

    def test_rejected_on_experiments_without_technology(self):
        spec = JobSpec("fp-space", technology={"vdd": 3.0})
        with pytest.raises(SpecValidationError):
            spec.validate()
