"""Job journal: append/replay, damage tolerance, compaction, queue wiring."""

import json
import os

import pytest

from repro import telemetry
from repro.service.jobs import JobSpec
from repro.service.journal import JobJournal, JournalEntry
from repro.service.queue import JobQueue


def _spec_json(name="svc-a"):
    return JobSpec(experiment=name).to_json()


@pytest.fixture
def journal(tmp_path):
    with JobJournal(str(tmp_path / "jobs.journal")) as j:
        yield j


class TestReplay:
    def test_submit_without_terminal_is_pending(self, journal):
        journal.submit("j1", "addr1", _spec_json(), priority=3,
                       client="alice")
        entries = journal.replay()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.job == "j1" and entry.address == "addr1"
        assert entry.priority == 3 and entry.client == "alice"
        assert not entry.in_flight

    def test_claim_marks_in_flight(self, journal):
        journal.submit("j1", "addr1", _spec_json())
        journal.claim("j1")
        (entry,) = journal.replay()
        assert entry.in_flight

    def test_terminal_ops_settle_the_job(self, journal):
        for i, settle in enumerate(
            (journal.done, journal.fail, journal.cancel)
        ):
            journal.submit(f"j{i}", f"addr{i}", _spec_json())
            settle(f"j{i}")
        journal.submit("live", "addr-live", _spec_json())
        entries = journal.replay()
        assert [e.job for e in entries] == ["live"]

    def test_submission_order_is_preserved(self, journal):
        for i in range(5):
            journal.submit(f"j{i}", f"addr{i}", _spec_json())
        journal.done("j2")
        assert [e.job for e in journal.replay()] == [
            "j0", "j1", "j3", "j4",
        ]

    def test_drain_marker_is_ignored(self, journal):
        journal.submit("j1", "addr1", _spec_json())
        journal.drain(queued=1, running=0)
        assert len(journal.replay()) == 1

    def test_missing_file_replays_empty(self, tmp_path):
        journal = JobJournal(str(tmp_path / "never-written.journal"))
        assert journal.replay() == []

    def test_later_submit_replaces_earlier(self, journal):
        journal.submit("j1", "addr1", _spec_json(), priority=0)
        journal.submit("j1", "addr1", _spec_json(), priority=9)
        (entry,) = journal.replay()
        assert entry.priority == 9


class TestDamageTolerance:
    def test_torn_tail_is_skipped(self, journal):
        journal.submit("j1", "addr1", _spec_json())
        journal.submit("j2", "addr2", _spec_json())
        with open(journal.path, "rb+") as fh:
            fh.truncate(os.path.getsize(journal.path) - 7)
        entries = journal.replay()
        assert [e.job for e in entries] == ["j1"]
        assert journal.stats.torn == 1

    def test_garbage_and_unknown_records_are_skipped(self, journal):
        journal.submit("j1", "addr1", _spec_json())
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"format": "other", "op": "submit"}) + "\n")
            fh.write(json.dumps({
                "format": "repro-v1", "kind": "job-journal",
                "op": "from-the-future", "job": "j1",
            }) + "\n")
        entries = journal.replay()
        assert [e.job for e in entries] == ["j1"]
        assert journal.stats.torn == 3

    def test_terminal_for_unknown_job_is_harmless(self, journal):
        journal.done("never-submitted")
        journal.submit("j1", "addr1", _spec_json())
        assert [e.job for e in journal.replay()] == ["j1"]

    def test_submit_missing_spec_is_skipped(self, journal):
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "format": "repro-v1", "kind": "job-journal",
                "op": "submit", "job": "j1", "address": "a",
            }) + "\n")
        assert journal.replay() == []
        assert journal.stats.torn == 1


class TestBounding:
    def test_reset_truncates(self, journal):
        journal.submit("j1", "addr1", _spec_json())
        journal.reset()
        assert journal.replay() == []
        assert journal.size_bytes() == 0
        assert journal.stats.compactions == 1
        # The appender still works after the rewrite swapped the file.
        journal.submit("j2", "addr2", _spec_json())
        assert [e.job for e in journal.replay()] == ["j2"]

    def test_compact_round_trips_live_set(self, journal):
        for i in range(10):
            journal.submit(f"j{i}", f"addr{i}", _spec_json())
            journal.done(f"j{i}")
        live = [
            (JournalEntry("queued-job", "addr-q", _spec_json()), False),
            (JournalEntry("running-job", "addr-r", _spec_json()), True),
        ]
        before = journal.size_bytes()
        journal.compact(live)
        assert journal.size_bytes() < before
        entries = journal.replay()
        assert [(e.job, e.in_flight) for e in entries] == [
            ("queued-job", False), ("running-job", True),
        ]

    def test_maybe_compact_honours_threshold(self, tmp_path):
        journal = JobJournal(
            str(tmp_path / "jobs.journal"), compact_every=4
        )
        calls = []

        def live_fn():
            calls.append(True)
            return []

        journal.submit("j1", "addr1", _spec_json())
        assert not journal.maybe_compact(live_fn)
        assert not calls  # below threshold: live_fn never built
        journal.done("j1")
        journal.submit("j2", "addr2", _spec_json())
        journal.done("j2")
        assert journal.maybe_compact(live_fn)
        assert journal.stats.lag == 0
        assert journal.replay() == []

    def test_maybe_compact_skips_when_rewrite_saves_nothing(
        self, tmp_path
    ):
        journal = JobJournal(
            str(tmp_path / "jobs.journal"), compact_every=2
        )
        journal.submit("j1", "addr1", _spec_json())
        journal.submit("j2", "addr2", _spec_json())
        live = [
            (JournalEntry("j1", "addr1", _spec_json()), False),
            (JournalEntry("j2", "addr2", _spec_json()), False),
        ]
        assert not journal.maybe_compact(lambda: live)
        assert journal.stats.compactions == 0

    def test_stats_accounting(self, journal):
        journal.submit("j1", "addr1", _spec_json())
        journal.claim("j1")
        stats = journal.stats.to_json()
        assert stats["records"] == 2 and stats["lag"] == 2
        assert stats["bytes"] == journal.size_bytes() > 0


class TestQueueWiring:
    @pytest.fixture
    def experiments(self, register_experiment):
        register_experiment("svc-a")
        register_experiment("svc-b")

    def test_lifecycle_is_journaled(self, experiments, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.journal"))
        queue = JobQueue(journal=journal)
        job, _ = queue.submit(JobSpec(experiment="svc-a"))
        (entry,) = journal.replay()
        assert entry.job == job.id and not entry.in_flight
        queue.claim(timeout=0.1)
        (entry,) = journal.replay()
        assert entry.in_flight
        queue.finish(job)
        assert journal.replay() == []

    def test_cancel_is_journaled(self, experiments, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.journal"))
        queue = JobQueue(journal=journal)
        job, _ = queue.submit(JobSpec(experiment="svc-a"))
        assert queue.cancel(job.id)
        assert journal.replay() == []

    def test_submit_pins_requested_job_id(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(
            JobSpec(experiment="svc-a"), job_id="recovered-id"
        )
        assert job.id == "recovered-id"
        assert queue.get("recovered-id") is job

    def test_journal_write_failure_degrades_not_fails(
        self, experiments, tmp_path, monkeypatch
    ):
        telemetry.enable()
        journal = JobJournal(str(tmp_path / "jobs.journal"))

        def boom(op, **fields):
            raise OSError("disk full")

        monkeypatch.setattr(journal, "append", boom)
        queue = JobQueue(journal=journal)
        job, _ = queue.submit(JobSpec(experiment="svc-a"))
        assert job is not None  # admission survived the journal failure
        counters = telemetry.get_metrics().snapshot()["counters"]
        assert counters.get("service.journal.errors", 0) >= 1
