"""Job queue: lifecycle, dedup, backpressure, and cancellation."""

import pytest

from repro import telemetry
from repro.errors import QueueFullError
from repro.service.jobs import JobSpec, JobState
from repro.service.queue import JobQueue


def _spec(name):
    return JobSpec(experiment=name)


@pytest.fixture
def experiments(register_experiment):
    for name in ("svc-a", "svc-b", "svc-c"):
        register_experiment(name)


class TestLifecycle:
    def test_submit_claim_finish(self, experiments):
        queue = JobQueue(limit=4)
        job, deduped = queue.submit(_spec("svc-a"))
        assert not deduped
        assert job.state is JobState.QUEUED and queue.depth() == 1
        claimed = queue.claim(timeout=0.1)
        assert claimed is job
        assert job.state is JobState.RUNNING and queue.depth() == 0
        queue.finish(job)
        assert job.state is JobState.DONE
        assert job.duration is not None and job.duration >= 0
        assert [e["event"] for e in job.events] == [
            "queued", "started", "finished",
        ]

    def test_claim_times_out_empty(self, experiments):
        assert JobQueue().claim(timeout=0.01) is None

    def test_counts_and_snapshots(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(_spec("svc-a"))
        assert queue.counts()["queued"] == 1
        snapshot = queue.snapshot(job.id)
        assert snapshot["state"] == "queued"
        assert snapshot["spec"]["experiment"] == "svc-a"
        summaries = queue.list_jobs()
        assert len(summaries) == 1 and "spec" not in summaries[0]
        assert queue.snapshot("nope") is None and queue.get("nope") is None

    def test_invalid_spec_is_rejected_before_admission(self):
        queue = JobQueue()
        with pytest.raises(Exception):
            queue.submit(_spec("no-such-experiment"))
        assert queue.depth() == 0


class TestDedup:
    def test_identical_submission_coalesces(self, experiments):
        queue = JobQueue()
        first, _ = queue.submit(_spec("svc-a"))
        second, deduped = queue.submit(_spec("svc-a"))
        assert deduped and second is first
        assert first.submissions == 2
        assert queue.depth() == 1  # one computation queued, not two

    def test_dedup_onto_running_and_done(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(_spec("svc-a"))
        queue.claim(timeout=0.1)
        again, deduped = queue.submit(_spec("svc-a"))
        assert deduped and again is job
        queue.finish(job)
        done_again, deduped = queue.submit(_spec("svc-a"))
        assert deduped and done_again is job
        assert job.submissions == 3

    def test_different_addresses_do_not_coalesce(self, experiments):
        queue = JobQueue()
        a, _ = queue.submit(_spec("svc-a"))
        b, deduped = queue.submit(_spec("svc-b"))
        assert not deduped and a is not b

    def test_done_job_with_evicted_result_is_not_deduped(self, experiments):
        stored = set()
        queue = JobQueue(result_exists=stored.__contains__)
        job, _ = queue.submit(_spec("svc-a"))
        queue.claim(timeout=0.1)
        stored.add(job.address)  # scheduler published the result
        queue.finish(job)
        hit, deduped = queue.submit(_spec("svc-a"))
        assert deduped and hit is job  # result still stored: coalesce
        stored.discard(job.address)  # TTL expiry / LRU eviction
        fresh, deduped = queue.submit(_spec("svc-a"))
        assert not deduped and fresh is not job
        assert fresh.state is JobState.QUEUED
        # The fresh job took over the address for future dedup.
        again, deduped = queue.submit(_spec("svc-a"))
        assert deduped and again is fresh

    def test_cancel_requested_running_job_is_not_deduped(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(_spec("svc-a"))
        queue.claim(timeout=0.1)
        queue.cancel(job.id)  # cooperative: job is still RUNNING
        fresh, deduped = queue.submit(_spec("svc-a"))
        assert not deduped and fresh is not job
        # The doomed job settling must not orphan the fresh binding.
        queue.mark_cancelled(job)
        again, deduped = queue.submit(_spec("svc-a"))
        assert deduped and again is fresh

    def test_failed_job_frees_the_address(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(_spec("svc-a"))
        queue.claim(timeout=0.1)
        queue.fail(job, ValueError("boom"))
        assert job.state is JobState.FAILED
        assert job.error == "boom" and job.error_type == "ValueError"
        retry, deduped = queue.submit(_spec("svc-a"))
        assert not deduped and retry is not job


class TestBackpressure:
    def test_queue_full_is_structured(self, experiments):
        queue = JobQueue(limit=1)
        queue.submit(_spec("svc-a"))
        with pytest.raises(QueueFullError) as err:
            queue.submit(_spec("svc-b"))
        assert err.value.depth == 1
        assert err.value.limit == 1
        assert err.value.retry_after > 0
        assert "full" in str(err.value)

    def test_running_jobs_do_not_hold_admission_slots(self, experiments):
        queue = JobQueue(limit=1)
        job, _ = queue.submit(_spec("svc-a"))
        queue.claim(timeout=0.1)  # now RUNNING; the slot is free
        queue.submit(_spec("svc-b"))
        assert queue.depth() == 1

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(limit=0)


class TestPriority:
    def test_higher_priority_claims_first(self, experiments):
        queue = JobQueue()
        low, _ = queue.submit(_spec("svc-a"), priority=0)
        high, _ = queue.submit(_spec("svc-b"), priority=5)
        mid, _ = queue.submit(_spec("svc-c"), priority=1)
        order = [queue.claim(timeout=0.1) for _ in range(3)]
        assert order == [high, mid, low]

    def test_ties_run_in_submission_order(self, experiments):
        queue = JobQueue()
        first, _ = queue.submit(_spec("svc-a"))
        second, _ = queue.submit(_spec("svc-b"))
        assert queue.claim(timeout=0.1) is first
        assert queue.claim(timeout=0.1) is second

    def test_duplicate_submission_raises_queued_priority(self, experiments):
        queue = JobQueue()
        low, _ = queue.submit(_spec("svc-a"), priority=0)
        mid, _ = queue.submit(_spec("svc-b"), priority=3)
        bumped, deduped = queue.submit(_spec("svc-a"), priority=5)
        assert deduped and bumped is low and low.priority == 5
        assert queue.claim(timeout=0.1) is low  # now outranks mid
        assert queue.claim(timeout=0.1) is mid
        # The stale pre-bump heap entry is skipped (lazy deletion).
        assert queue.claim(timeout=0.05) is None
        assert queue.depth() == 0

    def test_lower_priority_duplicate_does_not_demote(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(_spec("svc-a"), priority=5)
        same, deduped = queue.submit(_spec("svc-a"), priority=1)
        assert deduped and same is job and job.priority == 5


class TestCancellation:
    def test_cancel_queued_frees_the_slot(self, experiments):
        queue = JobQueue(limit=1)
        job, _ = queue.submit(_spec("svc-a"))
        cancelled = queue.cancel(job.id)
        assert cancelled is job and job.state is JobState.CANCELLED
        assert queue.depth() == 0
        # The freed slot admits a new job, and the lazily deleted heap
        # entry is skipped by the next claim.
        other, _ = queue.submit(_spec("svc-b"))
        assert queue.claim(timeout=0.1) is other

    def test_cancelled_address_is_resubmittable(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(_spec("svc-a"))
        queue.cancel(job.id)
        retry, deduped = queue.submit(_spec("svc-a"))
        assert not deduped and retry is not job

    def test_cancel_running_is_cooperative(self, experiments):
        queue = JobQueue()
        job, _ = queue.submit(_spec("svc-a"))
        queue.claim(timeout=0.1)
        queue.cancel(job.id)
        assert job.state is JobState.RUNNING  # still running ...
        assert job.cancel_requested  # ... until the scheduler checks
        queue.mark_cancelled(job)
        assert job.state is JobState.CANCELLED

    def test_cancel_unknown_and_terminal(self, experiments):
        queue = JobQueue()
        assert queue.cancel("nope") is None
        job, _ = queue.submit(_spec("svc-a"))
        queue.claim(timeout=0.1)
        queue.finish(job)
        assert queue.cancel(job.id) is job  # no-op on a terminal job
        assert job.state is JobState.DONE


class TestHistoryTrim:
    def test_old_terminal_jobs_are_dropped(self, experiments):
        queue = JobQueue(max_history=2)
        ids = []
        for name in ("svc-a", "svc-b", "svc-c"):
            job, _ = queue.submit(_spec(name))
            ids.append(job.id)
            queue.claim(timeout=0.1)
            queue.finish(job)
        assert queue.get(ids[0]) is None  # oldest record evicted
        assert queue.get(ids[1]) is not None
        assert queue.get(ids[2]) is not None


class TestCounters:
    def test_queue_counters(self, experiments):
        telemetry.enable()
        telemetry.reset()
        metrics = telemetry.get_metrics()
        queue = JobQueue(limit=1)
        job, _ = queue.submit(_spec("svc-a"))
        queue.submit(_spec("svc-a"))
        with pytest.raises(QueueFullError):
            queue.submit(_spec("svc-b"))
        assert metrics.counter_value("service.jobs.submitted") == 1
        assert metrics.counter_value("service.jobs.deduped") == 1
        assert metrics.counter_value("service.jobs.rejected") == 1
        assert metrics.gauge_value("service.queue.depth") == 1
        queue.claim(timeout=0.1)
        queue.finish(job)
        assert metrics.counter_value("service.jobs.completed") == 1
        assert metrics.gauge_value("service.queue.depth") == 0
