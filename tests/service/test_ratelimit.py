"""Per-client rate limiting and quotas: the token bucket and the 429s."""

import json
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.errors import ClientQuotaError
from repro.service import (
    ServiceClient,
    ServiceResponseError,
    SweepService,
    TokenBucketLimiter,
)
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue

from .conftest import make_report


def _service(**kwargs):
    kwargs.setdefault("port", 0)
    return SweepService(**kwargs)


class TestTokenBucketLimiter:
    def test_burst_then_deny_with_retry_hint(self):
        limiter = TokenBucketLimiter(rate=2.0, burst=2)
        assert limiter.acquire("alice") is None
        assert limiter.acquire("alice") is None
        wait = limiter.acquire("alice")
        # The bucket is empty; the next token accrues in 1/rate seconds.
        assert wait is not None and 0.0 < wait <= 0.5

    def test_bucket_refills_over_time(self):
        limiter = TokenBucketLimiter(rate=50.0, burst=1)
        assert limiter.acquire("alice") is None
        wait = limiter.acquire("alice")
        assert wait is not None
        time.sleep(wait + 0.01)
        assert limiter.acquire("alice") is None

    def test_clients_are_independent(self):
        limiter = TokenBucketLimiter(rate=1.0, burst=1)
        assert limiter.acquire("alice") is None
        assert limiter.acquire("alice") is not None
        assert limiter.acquire("bob") is None  # bob has his own bucket

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=1.0, burst=0)


class TestQueueQuota:
    def test_live_jobs_per_client_bounded(self, register_experiment):
        register_experiment("svc-quota-a")
        register_experiment("svc-quota-b")
        register_experiment("svc-quota-c")
        queue = JobQueue(client_quota=2)
        queue.submit(JobSpec("svc-quota-a"), client="alice")
        queue.submit(JobSpec("svc-quota-b"), client="alice")
        with pytest.raises(ClientQuotaError) as excinfo:
            queue.submit(JobSpec("svc-quota-c"), client="alice")
        assert excinfo.value.client == "alice"
        assert excinfo.value.live == 2 and excinfo.value.quota == 2
        # Another client — and an anonymous submission — are unaffected.
        queue.submit(JobSpec("svc-quota-c"), client="bob")

    def test_anonymous_submissions_bypass_quota(self, register_experiment):
        register_experiment("svc-quota-anon")
        register_experiment("svc-quota-anon2")
        queue = JobQueue(client_quota=1)
        queue.submit(JobSpec("svc-quota-anon"))
        queue.submit(JobSpec("svc-quota-anon2"))  # no client, no quota

    def test_duplicate_submission_coalesces_before_quota(
        self, register_experiment
    ):
        # Resubmitting the identical spec dedups onto the live job, so
        # it must not burn quota (it adds no load).
        register_experiment("svc-quota-dup")
        queue = JobQueue(client_quota=1)
        job, _ = queue.submit(JobSpec("svc-quota-dup"), client="alice")
        again, deduped = queue.submit(JobSpec("svc-quota-dup"), client="alice")
        assert deduped and again is job


class TestRateLimitOverHTTP:
    def test_burst_429_retry_after_then_success(self, register_experiment):
        register_experiment("svc-rate")
        with _service(rate_limit=50.0, rate_burst=2) as service:
            client = ServiceClient(service.url, client_id="alice")
            client.submit({"experiment": "svc-rate"})
            client.submit({"experiment": "svc-rate"})
            with pytest.raises(ServiceResponseError) as excinfo:
                client.submit({"experiment": "svc-rate"})
            assert excinfo.value.status == 429
            assert excinfo.value.payload["error"] == "rate-limited"
            retry_after = excinfo.value.retry_after
            assert retry_after is not None and retry_after > 0
            time.sleep(retry_after + 0.05)
            answer = client.submit({"experiment": "svc-rate"})
            assert answer["deduped"] is True  # back in business
            snapshot = client.metrics()
            assert snapshot["counters"]["service.ratelimit.rejected"] >= 1
            assert snapshot["counters"]["service.ratelimit.allowed"] >= 3

    def test_429_carries_retry_after_header(self, register_experiment):
        register_experiment("svc-rate-hdr")
        with _service(rate_limit=0.5, rate_burst=1) as service:
            body = json.dumps({"experiment": "svc-rate-hdr"}).encode()
            headers = {
                "Content-Type": "application/json",
                "X-Client-Id": "alice",
            }
            request = urllib.request.Request(
                service.url + "/jobs", data=body, headers=headers,
                method="POST",
            )
            urllib.request.urlopen(request, timeout=10).close()
            request = urllib.request.Request(
                service.url + "/jobs", data=body, headers=headers,
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 429
            assert float(excinfo.value.headers["Retry-After"]) > 0

    def test_other_clients_have_their_own_bucket(self, register_experiment):
        register_experiment("svc-rate-iso")
        with _service(rate_limit=0.5, rate_burst=1) as service:
            alice = ServiceClient(service.url, client_id="alice")
            bob = ServiceClient(service.url, client_id="bob")
            alice.submit({"experiment": "svc-rate-iso"})
            with pytest.raises(ServiceResponseError):
                alice.submit({"experiment": "svc-rate-iso"})
            # Bob's bucket is untouched by Alice's exhaustion.
            answer = bob.submit({"experiment": "svc-rate-iso"})
            assert answer["deduped"] in (True, False)

    def test_healthz_reports_the_limiter(self, register_experiment):
        register_experiment("svc-rate-health")
        with _service(rate_limit=5.0, rate_burst=3) as service:
            client = ServiceClient(service.url, client_id="alice")
            client.submit({"experiment": "svc-rate-health"})
            health = client.healthz()
            assert health["ratelimit"] == {
                "rate": 5.0, "burst": 3, "clients": 1,
            }
            assert health["scheduler"]["executor"] == "thread"

    def test_unlimited_by_default(self, register_experiment):
        register_experiment("svc-rate-off")
        with _service() as service:
            client = ServiceClient(service.url, client_id="alice")
            for _ in range(5):
                client.submit({"experiment": "svc-rate-off"})
            assert client.healthz()["ratelimit"] is None


class TestQuotaOverHTTP:
    def test_quota_429_frees_up_when_the_job_finishes(
        self, register_experiment
    ):
        release = threading.Event()

        def blocker(spec, resilience):
            release.wait(15)
            return SimpleNamespace(report=make_report("blocker"))

        register_experiment("svc-hold", runner=blocker)
        register_experiment("svc-more")
        try:
            with _service(client_quota=1) as service:
                alice = ServiceClient(service.url, client_id="alice")
                bob = ServiceClient(service.url, client_id="bob")
                held = alice.submit({"experiment": "svc-hold"})
                with pytest.raises(ServiceResponseError) as excinfo:
                    alice.submit({"experiment": "svc-more"})
                assert excinfo.value.status == 429
                assert excinfo.value.payload["error"] == "quota-exceeded"
                assert excinfo.value.payload["quota"] == 1
                assert excinfo.value.retry_after is not None
                # Bob is not punished for Alice's backlog.
                bob.submit({"experiment": "svc-more"})
                release.set()
                alice.wait(held["job"]["id"], timeout=10)
                # Alice's slot is free again once her job settled.
                alice.submit({"experiment": "svc-more"})
        finally:
            release.set()
