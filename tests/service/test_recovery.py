"""Crash recovery end to end: journal replay, client retries, SIGKILL.

Three layers, cheapest first:

* in-process: a service constructed (not started) journals submissions;
  a second service on the same directories re-enqueues them under the
  same job ids with ``recovered`` set, and ``/healthz`` reports the
  durability state;
* client: :class:`ServiceClient`'s blocking calls ride out a service
  restart on the same port without losing the job;
* subprocess (``slow``): ``serve`` is SIGKILLed mid-Table-1 via
  :class:`repro.inject.ProcessKiller`, restarted on the same
  ``--work-dir``, and must finish the journaled job *without
  resubmission*, byte-identical to an uninterrupted served run — for
  both the thread and the process executor.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.inject import ProcessKiller
from repro.service import ServiceClient, ServiceUnavailableError, SweepService
from repro.service.jobs import JobSpec
from repro.service.journal import JobJournal


def _dirs(tmp_path):
    return str(tmp_path / "work"), str(tmp_path / "store")


def _quiet_service(tmp_path, **kwargs):
    work_dir, store_dir = _dirs(tmp_path)
    kwargs.setdefault("port", 0)
    kwargs.setdefault("work_dir", work_dir)
    kwargs.setdefault("store_dir", store_dir)
    return SweepService(**kwargs)


class TestInProcessRecovery:
    def test_pending_job_recovers_with_same_id(
        self, tmp_path, register_experiment
    ):
        calls = register_experiment("svc-recover")
        first = _quiet_service(tmp_path)
        try:
            job, _ = first.queue.submit(JobSpec(experiment="svc-recover"))
        finally:
            first.journal.close()
            first._httpd.server_close()

        with _quiet_service(tmp_path) as second:
            assert second.recovered_jobs == 1
            assert second.recovered_in_flight == 0
            client = ServiceClient(second.url)
            payload = client.wait(job.id, timeout=10)
            record = client.job(job.id)
        assert record["recovered"] is True
        assert payload["address"] == job.address
        assert calls.count == 1

    def test_in_flight_job_resumes_as_recovered(
        self, tmp_path, register_experiment
    ):
        register_experiment("svc-recover")
        first = _quiet_service(tmp_path)
        try:
            job, _ = first.queue.submit(JobSpec(experiment="svc-recover"))
            assert first.queue.claim(timeout=1.0) is job
        finally:
            first.journal.close()
            first._httpd.server_close()

        with _quiet_service(tmp_path) as second:
            assert second.recovered_in_flight == 1
            client = ServiceClient(second.url)
            client.wait(job.id, timeout=10)

    def test_no_journal_means_no_recovery(
        self, tmp_path, register_experiment
    ):
        register_experiment("svc-recover")
        first = _quiet_service(tmp_path, journal=False)
        try:
            assert first.journal is None
            first.queue.submit(JobSpec(experiment="svc-recover"))
        finally:
            first._httpd.server_close()
        with _quiet_service(tmp_path) as second:
            assert second.recovered_jobs == 0

    def test_healthz_reports_durability(self, tmp_path):
        with _quiet_service(tmp_path, store_replicas=2) as service:
            health = ServiceClient(service.url).healthz()
        durability = health["durability"]
        assert durability["journal"]["path"].endswith("jobs.journal")
        assert durability["store_readable"] is True
        assert len(durability["replicas"]) == 2
        assert durability["recovered_jobs"] == 0

    def test_startup_compacts_settled_history(
        self, tmp_path, register_experiment
    ):
        register_experiment("svc-recover")
        first = _quiet_service(tmp_path)
        journal_path = first.journal.path
        try:
            job, _ = first.queue.submit(JobSpec(experiment="svc-recover"))
            assert first.queue.claim(timeout=1.0) is job
            first.queue.finish(job)
        finally:
            first.journal.close()
            first._httpd.server_close()
        assert os.path.getsize(journal_path) > 0

        second = _quiet_service(tmp_path)
        try:
            second.recover()
            # Startup rewrote the journal: the settled history is gone.
            assert second.recovered_jobs == 0
            assert os.path.getsize(journal_path) == 0
        finally:
            second.journal.close()
            second._httpd.server_close()


class TestClientRetry:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", connect_retries=-1)
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", retry_backoff=0)

    def test_wait_retries_transient_unavailability(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", retry_backoff=0.001
        )
        attempts = []

        def flaky_job(job_id):
            attempts.append(job_id)
            if len(attempts) < 3:
                raise ServiceUnavailableError(client.url, "refused")
            return {"state": "done"}

        monkeypatch.setattr(client, "job", flaky_job)
        monkeypatch.setattr(
            client, "result", lambda job_id: {"ok": True}
        )
        assert client.wait("j1", timeout=5) == {"ok": True}
        assert len(attempts) == 3

    def test_wait_gives_up_after_connect_retries(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=2, retry_backoff=0.001
        )

        def dead_job(job_id):
            raise ServiceUnavailableError(client.url, "refused")

        monkeypatch.setattr(client, "job", dead_job)
        with pytest.raises(ServiceUnavailableError):
            client.wait("j1", timeout=5)

    def test_retry_respects_the_wait_deadline(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=1000, retry_backoff=0.05
        )

        def dead_job(job_id):
            raise ServiceUnavailableError(client.url, "refused")

        monkeypatch.setattr(client, "job", dead_job)
        start = time.monotonic()
        with pytest.raises(ServiceUnavailableError):
            client.wait("j1", timeout=0.2)
        assert time.monotonic() - start < 2.0

    def test_wait_survives_a_service_restart(
        self, tmp_path, register_experiment
    ):
        """A polling client keeps its job across stop + start on one port.

        The first service's worker is wedged on an event that is never
        set, so stopping it leaves the job journaled as in flight; the
        second service binds the same port, recovers the job under the
        same id, and runs it with a healthy runner.
        """
        wedge = threading.Event()

        def wedged_runner(spec, resilience):
            wedge.wait(30)
            raise RuntimeError("wedged runner should never finish")

        register_experiment("svc-restart", runner=wedged_runner)
        first = _quiet_service(tmp_path, drain_timeout=0.2)
        first.start()
        port = first.port
        client = ServiceClient(
            first.url, connect_retries=40, retry_backoff=0.05
        )
        submitted = client.submit({"experiment": "svc-restart"})
        job_id = submitted["job"]["id"]

        outcome = {}

        def poll():
            try:
                outcome["payload"] = client.wait(job_id, timeout=30)
            except Exception as exc:  # surfaced by the main thread
                outcome["error"] = exc

        poller = threading.Thread(target=poll, daemon=True)
        # Wait for the job to be claimed so the journal holds a claim
        # record, then restart the service under the polling client.
        deadline = time.monotonic() + 5
        while client.job(job_id)["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        poller.start()
        first.stop()

        register_experiment("svc-restart")  # healthy replacement runner
        second = _quiet_service(tmp_path, port=port, drain_timeout=0.2)
        second.start()
        try:
            poller.join(timeout=30)
            assert not poller.is_alive()
            assert "error" not in outcome, outcome.get("error")
            assert outcome["payload"]["address"] == submitted[
                "job"]["address"]
            assert client.job(job_id)["recovered"] is True
        finally:
            wedge.set()
            second.stop()


def _start_serve(argv, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(cwd, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"] + argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=cwd,
        env=env,
    )
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    if url is None:
        process.kill()
        raise AssertionError("serve never printed its URL")
    return process, url


def _wait_done(client, job_id, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            record = client.job(job_id)
        except ServiceUnavailableError:
            time.sleep(0.1)
            continue
        if record["state"] == "done":
            return client.result(job_id)
        assert record["state"] in ("queued", "running"), record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


@pytest.mark.slow
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_sigkill_mid_table1_resumes_byte_identical(
    tmp_path, executor
):
    """The acceptance criterion: SIGKILL mid-run costs nothing but time.

    A served coarse Table 1 sweep is SIGKILLed after its first unit
    checkpoints, the service restarts on the same ``--work-dir``, and
    the journaled job must finish *without resubmission* with a payload
    byte-identical to an uninterrupted served run's.
    """
    repo = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    spec = {"experiment": "table1", "n_r": 6, "n_u": 4}
    work_dir = str(tmp_path / "work")
    store_dir = str(tmp_path / "store")
    serve_argv = [
        "--work-dir", work_dir, "--store-dir", store_dir,
        "--store-replicas", "2", "--executor", executor,
    ]

    process, url = _start_serve(serve_argv, repo)
    try:
        client = ServiceClient(url)
        job_id = client.submit(spec)["job"]["id"]
        # Let at least one sweep unit checkpoint, then pull the plug.
        deadline = time.monotonic() + 30
        ckpt = None
        while time.monotonic() < deadline:
            names = [n for n in os.listdir(work_dir)
                     if n.endswith(".ckpt")]
            if names:
                ckpt = os.path.join(work_dir, names[0])
                if os.path.getsize(ckpt) > 0:
                    break
            time.sleep(0.01)
        assert ckpt is not None and os.path.getsize(ckpt) > 0
        killer = ProcessKiller(process.pid, sig=signal.SIGKILL)
        killer.arm()
        assert killer.fires == 1
        process.wait(timeout=10)
    finally:
        if process.poll() is None:
            process.kill()

    # The journal must still hold the in-flight job.
    entries = JobJournal(os.path.join(work_dir, "jobs.journal")).replay()
    assert [e.job for e in entries] == [job_id]
    assert entries[0].in_flight

    process, url = _start_serve(serve_argv, repo)
    try:
        resumed = _wait_done(ServiceClient(url), job_id)
    finally:
        process.terminate()
        process.wait(timeout=30)

    # After completion the journal replays empty: the job settled.
    assert JobJournal(
        os.path.join(work_dir, "jobs.journal")
    ).replay() == []

    # An uninterrupted served run of the same spec, fresh directories.
    baseline_argv = [
        "--work-dir", str(tmp_path / "work2"),
        "--store-dir", str(tmp_path / "store2"),
        "--executor", executor,
    ]
    process, url = _start_serve(baseline_argv, repo)
    try:
        client = ServiceClient(url)
        baseline_id = client.submit(spec)["job"]["id"]
        baseline = _wait_done(client, baseline_id)
    finally:
        process.terminate()
        process.wait(timeout=30)

    assert json.dumps(resumed, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
