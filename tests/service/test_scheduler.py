"""Scheduler workers: execution, cache hits, failures, cancellation."""

import os
import threading
import time
from types import SimpleNamespace

import pytest

from repro import telemetry
from repro.service.jobs import JobSpec, JobState
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ResultStore

from .conftest import make_report


def _wait_terminal(job, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not job.state.terminal and time.monotonic() < deadline:
        time.sleep(0.01)
    assert job.state.terminal, f"job stuck in {job.state}"


def _wait_running(job, timeout=5.0):
    deadline = time.monotonic() + timeout
    while job.state is JobState.QUEUED and time.monotonic() < deadline:
        time.sleep(0.01)
    assert job.state is JobState.RUNNING


@pytest.fixture
def rig():
    """queue + store + started scheduler, torn down after the test."""
    queue = JobQueue()
    store = ResultStore()
    scheduler = Scheduler(queue, store, poll_interval=0.02)
    scheduler.start()
    try:
        yield SimpleNamespace(queue=queue, store=store, scheduler=scheduler)
    finally:
        scheduler.stop()


class TestExecution:
    def test_job_runs_and_result_lands_in_store(self, rig, register_experiment):
        calls = register_experiment("svc-run")
        job, _ = rig.queue.submit(JobSpec("svc-run"))
        _wait_terminal(job)
        assert job.state is JobState.DONE and not job.cache_hit
        assert calls.count == 1
        payload = rig.store.get(job.address)
        assert payload is not None and payload["experiment"] == "svc-run"

    def test_second_queue_hits_the_store(self, rig, register_experiment):
        calls = register_experiment("svc-cache")
        spec = JobSpec("svc-cache")
        job, _ = rig.queue.submit(spec)
        _wait_terminal(job)
        # A fresh queue (no dedup history) against the same store: the
        # scheduler must serve the result without recomputing.
        queue2 = JobQueue()
        scheduler2 = Scheduler(queue2, rig.store, poll_interval=0.02)
        scheduler2.start()
        try:
            job2, _ = queue2.submit(spec)
            _wait_terminal(job2)
        finally:
            scheduler2.stop()
        assert job2.state is JobState.DONE and job2.cache_hit
        assert calls.count == 1
        assert any(e["event"] == "cache-hit" for e in job2.events)

    def test_evicted_result_recomputes_on_resubmission(
        self, register_experiment
    ):
        calls = register_experiment("svc-evict")
        store = ResultStore(max_entries=1)
        queue = JobQueue(result_exists=store.contains)
        scheduler = Scheduler(queue, store, poll_interval=0.02)
        scheduler.start()
        try:
            spec = JobSpec("svc-evict")
            job, _ = queue.submit(spec)
            _wait_terminal(job)
            assert calls.count == 1
            store.clear()  # stands in for TTL expiry / LRU eviction
            job2, deduped = queue.submit(spec)
            assert not deduped and job2 is not job
            _wait_terminal(job2)
        finally:
            scheduler.stop()
        assert job2.state is JobState.DONE and not job2.cache_hit
        assert calls.count == 2
        assert store.get(job2.address) is not None

    def test_failure_settles_failed_with_error(self, rig, register_experiment):
        def exploding(spec, resilience):
            raise RuntimeError("solver exploded")

        register_experiment("svc-boom", runner=exploding)
        job, _ = rig.queue.submit(JobSpec("svc-boom"))
        _wait_terminal(job)
        assert job.state is JobState.FAILED
        assert job.error == "solver exploded"
        assert job.error_type == "RuntimeError"
        assert any(e["event"] == "error" for e in job.events)
        assert rig.store.get(job.address) is None

    def test_worker_survives_failures(self, rig, register_experiment):
        def exploding(spec, resilience):
            raise RuntimeError("boom")

        register_experiment("svc-boom2", runner=exploding)
        good_calls = register_experiment("svc-good")
        bad, _ = rig.queue.submit(JobSpec("svc-boom2"))
        _wait_terminal(bad)
        good, _ = rig.queue.submit(JobSpec("svc-good"))
        _wait_terminal(good)
        assert good.state is JobState.DONE and good_calls.count == 1


class TestCancellation:
    def test_cancel_running_job_is_honoured(self, rig, register_experiment):
        release = threading.Event()

        def slow(spec, resilience):
            release.wait(10)
            return SimpleNamespace(report=make_report("slow"))

        register_experiment("svc-slow", runner=slow)
        job, _ = rig.queue.submit(JobSpec("svc-slow"))
        _wait_running(job)
        rig.queue.cancel(job.id)
        assert job.cancel_requested
        release.set()
        _wait_terminal(job)
        assert job.state is JobState.CANCELLED
        # The computed result is still valid and content-addressed, so
        # it is published even though the job settles cancelled.
        assert rig.store.get(job.address) is not None


class TestResilienceWiring:
    def test_checkpoint_is_per_address_under_work_dir(
        self, tmp_path, register_experiment
    ):
        seen = {}

        def capture(spec, resilience):
            seen["checkpoint"] = resilience.checkpoint
            return SimpleNamespace(report=make_report("cap"))

        register_experiment("svc-ckpt", runner=capture)
        queue, store = JobQueue(), ResultStore()
        work_dir = str(tmp_path / "work")
        scheduler = Scheduler(
            queue, store, work_dir=work_dir, poll_interval=0.02
        )
        scheduler.start()
        try:
            job, _ = queue.submit(JobSpec("svc-ckpt"))
            _wait_terminal(job)
        finally:
            scheduler.stop()
        checkpoint = seen["checkpoint"]
        assert checkpoint is not None
        assert checkpoint.path == os.path.join(
            work_dir, job.address + ".ckpt"
        )
        # Success removes the unit checkpoint: the result is in the store.
        assert not os.path.exists(checkpoint.path)

    def test_no_work_dir_means_no_checkpoint(self, rig, register_experiment):
        seen = {}

        def capture(spec, resilience):
            seen["checkpoint"] = resilience.checkpoint
            return SimpleNamespace(report=make_report("cap"))

        register_experiment("svc-nockpt", runner=capture)
        job, _ = rig.queue.submit(JobSpec("svc-nockpt"))
        _wait_terminal(job)
        assert seen["checkpoint"] is None


class TestLifecycle:
    def test_double_start_rejected(self, rig):
        with pytest.raises(RuntimeError):
            rig.scheduler.start()

    def test_stop_is_idempotent_and_running_reflects(self):
        scheduler = Scheduler(JobQueue(), ResultStore(), poll_interval=0.02)
        assert not scheduler.running
        scheduler.start()
        assert scheduler.running
        scheduler.stop()
        scheduler.stop()
        assert not scheduler.running

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            Scheduler(JobQueue(), ResultStore(), workers=0)

    def test_job_duration_histogram_records(self, rig, register_experiment):
        telemetry.enable()
        telemetry.reset()
        register_experiment("svc-hist")
        job, _ = rig.queue.submit(JobSpec("svc-hist"))
        _wait_terminal(job)
        summary = telemetry.get_metrics().histogram(
            "service.jobs.seconds"
        ).snapshot()
        assert summary["count"] == 1
