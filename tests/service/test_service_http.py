"""End-to-end tests of the HTTP API (real sockets, real threads)."""

import threading
import time
from types import SimpleNamespace

import pytest

from repro import __version__
from repro.service import (
    ServiceClient,
    ServiceResponseError,
    ServiceUnavailableError,
    SweepService,
)

from .conftest import make_report


def _service(**kwargs):
    kwargs.setdefault("port", 0)  # ephemeral port; tests never collide
    return SweepService(**kwargs)


def _wait_state(client, job_id, state, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.job(job_id)
        if record["state"] == state:
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {state}")


class TestDedupOverHTTP:
    def test_two_identical_posts_one_computation(self, register_experiment):
        calls = register_experiment("svc-http")
        with _service() as service:
            client = ServiceClient(service.url)
            first = client.submit({"experiment": "svc-http"})
            second = client.submit({"experiment": "svc-http"})
            assert second["deduped"] is True
            assert second["job"]["id"] == first["job"]["id"]
            assert second["job"]["address"] == first["job"]["address"]
            payload_a = client.wait(first["job"]["id"], timeout=10)
            payload_b = client.wait(second["job"]["id"], timeout=10)
            record = client.job(first["job"]["id"])
        assert payload_a == payload_b
        assert payload_a["address"] == first["job"]["address"]
        assert record["submissions"] == 2
        assert calls.count == 1  # the acceptance criterion: ONE computation

    def test_execution_hints_dedupe_too(self, register_experiment):
        calls = register_experiment("svc-hints")
        with _service() as service:
            client = ServiceClient(service.url)
            first = client.submit({"experiment": "svc-hints", "jobs": 1})
            second = client.submit({"experiment": "svc-hints", "jobs": 4})
            assert second["deduped"] is True
            client.wait(first["job"]["id"], timeout=10)
        assert calls.count == 1


class TestBackpressureOverHTTP:
    def test_full_queue_is_a_structured_429(self, register_experiment):
        release = threading.Event()

        def blocker(spec, resilience):
            release.wait(10)
            return SimpleNamespace(report=make_report("blocker"))

        register_experiment("svc-block", runner=blocker)
        filler_calls = register_experiment("svc-fill")
        register_experiment("svc-extra")
        try:
            with _service(queue_limit=1, workers=1) as service:
                client = ServiceClient(service.url)
                blocked = client.submit({"experiment": "svc-block"})
                # Wait until the worker claims it: RUNNING jobs hold no
                # admission slot, so exactly one more may queue.
                _wait_state(client, blocked["job"]["id"], "running")
                filler = client.submit({"experiment": "svc-fill"})
                with pytest.raises(ServiceResponseError) as err:
                    client.submit({"experiment": "svc-extra"})
                assert err.value.status == 429
                payload = err.value.payload
                assert payload["error"] == "queue-full"
                assert payload["depth"] == 1 and payload["limit"] == 1
                assert payload["retry_after"] > 0
                # Cancelling the queued filler frees its slot ...
                cancelled = client.cancel(filler["job"]["id"])
                assert cancelled["state"] == "cancelled"
                # ... so the rejected spec is now admitted.
                third = client.submit({"experiment": "svc-extra"})
                assert third["deduped"] is False
                release.set()
                client.wait(blocked["job"]["id"], timeout=10)
                client.wait(third["job"]["id"], timeout=10)
        finally:
            release.set()
        assert filler_calls.count == 0  # the cancelled job never ran


class TestErrorsOverHTTP:
    def test_unknown_job_is_404(self):
        with _service() as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceResponseError) as err:
                client.job("nope")
            assert err.value.status == 404
            with pytest.raises(ServiceResponseError) as err:
                client.result("nope")
            assert err.value.status == 404
            with pytest.raises(ServiceResponseError) as err:
                client.cancel("nope")
            assert err.value.status == 404

    def test_unknown_route_is_404(self):
        with _service() as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceResponseError) as err:
                client._request("GET", "/teapot")
            assert err.value.status == 404

    def test_invalid_spec_is_400(self):
        with _service() as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceResponseError) as err:
                client.submit({"experiment": "no-such-experiment"})
            assert err.value.status == 400
            assert err.value.payload["error"] == "invalid-spec"
            with pytest.raises(ServiceResponseError) as err:
                client.submit({"experiment": "table1", "priority": "high"})
            assert err.value.status == 400

    def test_result_before_done_is_409(self, register_experiment):
        def exploding(spec, resilience):
            raise RuntimeError("boom")

        register_experiment("svc-fail", runner=exploding)
        with _service() as service:
            client = ServiceClient(service.url)
            submitted = client.submit({"experiment": "svc-fail"})
            job_id = submitted["job"]["id"]
            with pytest.raises(ServiceResponseError):
                client.wait(job_id, timeout=10)  # FAILED surfaces here
            with pytest.raises(ServiceResponseError) as err:
                client.result(job_id)
            assert err.value.status == 409
            assert err.value.payload["state"] == "failed"
            assert err.value.payload["error_type"] == "RuntimeError"

    def test_evicted_result_is_410(self, register_experiment):
        register_experiment("svc-ev1")
        register_experiment("svc-ev2")
        with _service(store_max=1) as service:
            client = ServiceClient(service.url)
            first, _ = client.submit_and_wait(
                {"experiment": "svc-ev1"}, timeout=10
            )
            client.submit_and_wait({"experiment": "svc-ev2"}, timeout=10)
            with pytest.raises(ServiceResponseError) as err:
                client.result(first["id"])
            assert err.value.status == 410
            assert err.value.payload["error"] == "result-evicted"

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceUnavailableError):
            client.healthz()


class TestHealthAndMetrics:
    def test_healthz_reports_version_uptime_and_queue(self):
        with _service(queue_limit=7, workers=2) as service:
            client = ServiceClient(service.url)
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["uptime_seconds"] >= 0
        assert health["queue"] == {"depth": 0, "limit": 7}
        assert health["workers"] == 2
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled",
        }
        assert health["store"]["entries"] == 0

    def test_metrics_exposes_service_counters(self, register_experiment):
        register_experiment("svc-metrics")
        with _service() as service:
            client = ServiceClient(service.url)
            client.submit_and_wait({"experiment": "svc-metrics"}, timeout=10)
            client.submit_and_wait({"experiment": "svc-metrics"}, timeout=10)
            metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["service.jobs.submitted"] >= 1
        assert counters["service.jobs.deduped"] >= 1
        assert counters["service.jobs.completed"] >= 1
        assert counters["service.store.puts"] >= 1
        assert counters["service.store.hits"] >= 1
        assert counters["service.http.requests"] >= 4

    def test_metrics_exposes_solver_cache_stats(self, register_experiment):
        register_experiment("svc-cache-metrics")
        with _service() as service:
            client = ServiceClient(service.url)
            client.submit_and_wait(
                {"experiment": "svc-cache-metrics"}, timeout=10
            )
            metrics = client.metrics()
            prom = client.metrics_prometheus()
        # Scrape-time cache statistics are merged into the snapshot for
        # both caches, whatever the telemetry flag did during the solves.
        for prefix in ("solver.propagator_cache", "solver.ensemble_cache"):
            for stat in ("hits", "misses", "evictions"):
                assert metrics["counters"][f"{prefix}.{stat}"] >= 0
            assert metrics["gauges"][f"{prefix}.currsize"] >= 0
            assert metrics["gauges"][f"{prefix}.maxsize"] > 0
        assert "repro_solver_propagator_cache_hits_total" in prom
        assert "repro_solver_ensemble_cache_currsize" in prom

    def test_jobs_listing(self, register_experiment):
        register_experiment("svc-list")
        with _service() as service:
            client = ServiceClient(service.url)
            client.submit_and_wait({"experiment": "svc-list"}, timeout=10)
            listing = client.jobs()
        assert len(listing["jobs"]) == 1
        assert listing["jobs"][0]["state"] == "done"


class TestRealExperiment:
    def test_served_table1_report_is_byte_identical_to_direct_run(self):
        # Direct run first, while telemetry is off — exactly what the
        # classic CLI path prints for this configuration.
        from repro.circuit.defects import OpenLocation
        from repro.experiments.table1 import run_table1

        direct = run_table1(
            opens=(OpenLocation.CELL, OpenLocation.WORD_LINE), n_r=4, n_u=3
        )
        expected = direct.report.render()
        spec = {
            "experiment": "table1",
            "opens": ["CELL", "WORD_LINE"],
            "n_r": 4,
            "n_u": 3,
        }
        with _service() as service:
            client = ServiceClient(service.url)
            job, payload = client.submit_and_wait(spec, timeout=120)
            assert payload["report"] == expected
            assert payload["experiment"] == "table1"
            assert payload["address"] == job["address"]
            assert payload["rows"]  # the structured inventory rides along
            # Resubmission coalesces and serves the identical payload.
            job2, payload2 = client.submit_and_wait(spec, timeout=10)
            assert job2["id"] == job["id"]
            assert payload2 == payload
