"""Content-addressed result store: caching, LRU, TTL, persistence."""

import json
import os
import time

import pytest

from repro import telemetry
from repro.service.store import (
    ReplicatedResultStore,
    ResultStore,
    payload_digest,
)


def _payload(n):
    return {"format": "repro-v1", "kind": "job-result", "n": n}


class TestMemoryStore:
    def test_round_trip_and_miss(self):
        store = ResultStore()
        assert store.get("aa") is None
        store.put("aa", _payload(1))
        assert store.get("aa") == _payload(1)
        assert store.contains("aa") and not store.contains("bb")
        assert len(store) == 1 and store.addresses() == ("aa",)

    def test_clear(self):
        store = ResultStore()
        store.put("aa", _payload(1))
        store.clear()
        assert len(store) == 0 and store.get("aa") is None

    def test_lru_eviction_prefers_stale_entries(self):
        store = ResultStore(max_entries=2)
        store.put("aa", _payload(1))
        store.put("bb", _payload(2))
        store.get("aa")  # refresh: "bb" is now least recently used
        store.put("cc", _payload(3))
        assert store.get("bb") is None
        assert store.get("aa") == _payload(1)
        assert store.get("cc") == _payload(3)

    def test_ttl_expires_entries(self):
        store = ResultStore(ttl=0.05)
        store.put("aa", _payload(1))
        assert store.get("aa") == _payload(1)
        time.sleep(0.12)
        assert not store.contains("aa")
        assert store.get("aa") is None
        assert len(store) == 0  # expired entry was evicted at lookup

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResultStore(max_entries=0)
        with pytest.raises(ValueError):
            ResultStore(ttl=0)


class TestDiskStore:
    def test_round_trip_writes_one_document_per_address(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        path = os.path.join(root, "aa.json")
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
        assert document["kind"] == "result-record"
        assert document["payload"] == _payload(1)
        assert document["digest"] == payload_digest(_payload(1))
        assert store.get("aa") == _payload(1)

    def test_index_survives_restart(self, tmp_path):
        root = str(tmp_path / "results")
        ResultStore(root=root).put("aa", _payload(1))
        reopened = ResultStore(root=root)
        assert len(reopened) == 1
        assert reopened.get("aa") == _payload(1)

    def test_eviction_removes_the_document(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root, max_entries=1)
        store.put("aa", _payload(1))
        store.put("bb", _payload(2))
        assert not os.path.exists(os.path.join(root, "aa.json"))
        assert store.get("aa") is None
        assert store.get("bb") == _payload(2)

    def test_vanished_document_is_a_miss(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        os.remove(os.path.join(root, "aa.json"))
        assert store.get("aa") is None
        assert len(store) == 0  # stale index entry dropped

    def test_foreign_files_are_ignored_on_rebuild(self, tmp_path):
        root = str(tmp_path / "results")
        os.makedirs(root)
        with open(os.path.join(root, "notes.txt"), "w") as fh:
            fh.write("not a result")
        assert len(ResultStore(root=root)) == 0


class TestCounters:
    def test_hit_miss_put_eviction_expiry(self):
        telemetry.enable()
        telemetry.reset()
        metrics = telemetry.get_metrics()
        store = ResultStore(max_entries=1, ttl=0.05)
        store.get("aa")
        store.put("aa", _payload(1))
        store.get("aa")
        store.put("bb", _payload(2))  # evicts "aa" (cap 1)
        time.sleep(0.12)
        store.get("bb")  # expired
        assert metrics.counter_value("service.store.misses") == 2
        assert metrics.counter_value("service.store.hits") == 1
        assert metrics.counter_value("service.store.puts") == 2
        assert metrics.counter_value("service.store.evictions") == 1
        assert metrics.counter_value("service.store.expired") == 1
        assert metrics.gauge_value("service.store.entries") == 1

    def test_contains_records_no_counters(self):
        telemetry.enable()
        telemetry.reset()
        metrics = telemetry.get_metrics()
        store = ResultStore()
        store.contains("aa")
        assert metrics.counter_value("service.store.misses") == 0


class TestIntegrity:
    def _corrupt(self, root, address):
        path = os.path.join(root, address + ".json")
        with open(path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff\xfe")

    def test_corrupted_document_is_quarantined_not_served(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        self._corrupt(root, "aa")
        assert store.get("aa") is None
        assert store.corrupt == 1
        # The bytes moved aside for post-mortem, not deleted.
        quarantined = os.listdir(os.path.join(root, "quarantine"))
        assert quarantined == ["aa.json"]
        assert not os.path.exists(os.path.join(root, "aa.json"))
        # A recompute stores a fresh verified copy.
        store.put("aa", _payload(1))
        assert store.get("aa") == _payload(1)

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        path = os.path.join(root, "aa.json")
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
        document["payload"]["n"] = 999  # bit rot with intact JSON
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        assert store.get("aa") is None
        assert store.corrupt == 1

    def test_rebuild_skips_and_quarantines_damaged_documents(
        self, tmp_path
    ):
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        store.put("bb", _payload(2))
        store.put("cc", _payload(3))
        self._corrupt(root, "aa")
        # Truncation (torn write) is also damage.
        with open(os.path.join(root, "bb.json"), "r+b") as fh:
            fh.truncate(17)
        reopened = ResultStore(root=root)
        assert reopened.addresses() == ("cc",)
        assert reopened.rebuild_skipped == 2
        assert reopened.get("cc") == _payload(3)
        assert sorted(os.listdir(os.path.join(root, "quarantine"))) == [
            "aa.json",
            "bb.json",
        ]

    def test_legacy_bare_payload_documents_still_serve(self, tmp_path):
        root = str(tmp_path / "results")
        os.makedirs(root)
        with open(os.path.join(root, "aa.json"), "w") as fh:
            json.dump(_payload(1), fh)
        store = ResultStore(root=root)
        assert store.get("aa") == _payload(1)
        assert store.corrupt == 0

    def test_corruption_counters(self, tmp_path):
        telemetry.enable()
        telemetry.reset()
        metrics = telemetry.get_metrics()
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        self._corrupt(root, "aa")
        store.get("aa")
        assert metrics.counter_value("service.store.corrupt") == 1
        assert metrics.counter_value("service.store.misses") == 1
        self._corrupt_fresh = ResultStore(root=root)  # nothing left to skip
        assert (
            metrics.counter_value("service.store.rebuild_skipped") == 0
        )


class TestReplicatedStore:
    def test_write_all_read_any(self, tmp_path):
        root = str(tmp_path / "store")
        store = ReplicatedResultStore(root, replicas=2)
        store.put("aa", _payload(1))
        for index in range(2):
            assert os.path.exists(
                os.path.join(root, "replica-%d" % index, "aa.json")
            )
        assert store.get("aa") == _payload(1)
        assert store.contains("aa")
        assert len(store) == 1 and store.addresses() == ("aa",)

    def test_corrupted_replica_is_read_repaired(self, tmp_path):
        root = str(tmp_path / "store")
        store = ReplicatedResultStore(root, replicas=2)
        store.put("aa", _payload(1))
        path = os.path.join(root, "replica-0", "aa.json")
        with open(path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff\xfe")
        # The damaged copy is never served; the healthy replica answers
        # and replica-0 gets a fresh verified copy.
        assert store.get("aa") == _payload(1)
        assert store.read_repairs == 1
        assert store.replicas[0].corrupt == 1
        with open(path, encoding="utf-8") as fh:
            repaired = json.load(fh)
        assert repaired["payload"] == _payload(1)
        # Second read needs no repair.
        assert store.get("aa") == _payload(1)
        assert store.read_repairs == 1

    def test_missing_replica_copy_is_read_repaired(self, tmp_path):
        root = str(tmp_path / "store")
        store = ReplicatedResultStore(root, replicas=3)
        store.put("aa", _payload(1))
        os.remove(os.path.join(root, "replica-1", "aa.json"))
        store.replicas[1]._index.pop("aa")
        assert store.get("aa") == _payload(1)
        assert store.read_repairs == 1
        assert os.path.exists(os.path.join(root, "replica-1", "aa.json"))

    def test_degraded_serving_with_one_dead_replica(
        self, tmp_path, monkeypatch
    ):
        root = str(tmp_path / "store")
        store = ReplicatedResultStore(root, replicas=2)

        def broken_put(address, payload):
            raise OSError("replica disk gone")

        monkeypatch.setattr(store.replicas[0], "put", broken_put)
        store.put("aa", _payload(1))  # degraded, not fatal
        assert store.replica_write_errors == 1
        assert store.get("aa") == _payload(1)
        assert store.readable()

    def test_put_raises_only_when_every_replica_fails(
        self, tmp_path, monkeypatch
    ):
        root = str(tmp_path / "store")
        store = ReplicatedResultStore(root, replicas=2)

        def broken_put(address, payload):
            raise OSError("disk gone")

        for replica in store.replicas:
            monkeypatch.setattr(replica, "put", broken_put)
        with pytest.raises(OSError):
            store.put("aa", _payload(1))
        assert store.replica_write_errors == 2

    def test_stats_reports_per_replica_health(self, tmp_path):
        root = str(tmp_path / "store")
        store = ReplicatedResultStore(root, replicas=2)
        store.put("aa", _payload(1))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["read_repairs"] == 0
        assert len(stats["replicas"]) == 2
        assert all(r["readable"] for r in stats["replicas"])

    def test_replica_count_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ReplicatedResultStore(str(tmp_path / "s"), replicas=0)
