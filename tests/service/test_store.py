"""Content-addressed result store: caching, LRU, TTL, persistence."""

import json
import os
import time

import pytest

from repro import telemetry
from repro.service.store import ResultStore


def _payload(n):
    return {"format": "repro-v1", "kind": "job-result", "n": n}


class TestMemoryStore:
    def test_round_trip_and_miss(self):
        store = ResultStore()
        assert store.get("aa") is None
        store.put("aa", _payload(1))
        assert store.get("aa") == _payload(1)
        assert store.contains("aa") and not store.contains("bb")
        assert len(store) == 1 and store.addresses() == ("aa",)

    def test_clear(self):
        store = ResultStore()
        store.put("aa", _payload(1))
        store.clear()
        assert len(store) == 0 and store.get("aa") is None

    def test_lru_eviction_prefers_stale_entries(self):
        store = ResultStore(max_entries=2)
        store.put("aa", _payload(1))
        store.put("bb", _payload(2))
        store.get("aa")  # refresh: "bb" is now least recently used
        store.put("cc", _payload(3))
        assert store.get("bb") is None
        assert store.get("aa") == _payload(1)
        assert store.get("cc") == _payload(3)

    def test_ttl_expires_entries(self):
        store = ResultStore(ttl=0.05)
        store.put("aa", _payload(1))
        assert store.get("aa") == _payload(1)
        time.sleep(0.12)
        assert not store.contains("aa")
        assert store.get("aa") is None
        assert len(store) == 0  # expired entry was evicted at lookup

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResultStore(max_entries=0)
        with pytest.raises(ValueError):
            ResultStore(ttl=0)


class TestDiskStore:
    def test_round_trip_writes_one_document_per_address(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        path = os.path.join(root, "aa.json")
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh) == _payload(1)
        assert store.get("aa") == _payload(1)

    def test_index_survives_restart(self, tmp_path):
        root = str(tmp_path / "results")
        ResultStore(root=root).put("aa", _payload(1))
        reopened = ResultStore(root=root)
        assert len(reopened) == 1
        assert reopened.get("aa") == _payload(1)

    def test_eviction_removes_the_document(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root, max_entries=1)
        store.put("aa", _payload(1))
        store.put("bb", _payload(2))
        assert not os.path.exists(os.path.join(root, "aa.json"))
        assert store.get("aa") is None
        assert store.get("bb") == _payload(2)

    def test_vanished_document_is_a_miss(self, tmp_path):
        root = str(tmp_path / "results")
        store = ResultStore(root=root)
        store.put("aa", _payload(1))
        os.remove(os.path.join(root, "aa.json"))
        assert store.get("aa") is None
        assert len(store) == 0  # stale index entry dropped

    def test_foreign_files_are_ignored_on_rebuild(self, tmp_path):
        root = str(tmp_path / "results")
        os.makedirs(root)
        with open(os.path.join(root, "notes.txt"), "w") as fh:
            fh.write("not a result")
        assert len(ResultStore(root=root)) == 0


class TestCounters:
    def test_hit_miss_put_eviction_expiry(self):
        telemetry.enable()
        telemetry.reset()
        metrics = telemetry.get_metrics()
        store = ResultStore(max_entries=1, ttl=0.05)
        store.get("aa")
        store.put("aa", _payload(1))
        store.get("aa")
        store.put("bb", _payload(2))  # evicts "aa" (cap 1)
        time.sleep(0.12)
        store.get("bb")  # expired
        assert metrics.counter_value("service.store.misses") == 2
        assert metrics.counter_value("service.store.hits") == 1
        assert metrics.counter_value("service.store.puts") == 2
        assert metrics.counter_value("service.store.evictions") == 1
        assert metrics.counter_value("service.store.expired") == 1
        assert metrics.gauge_value("service.store.entries") == 1

    def test_contains_records_no_counters(self):
        telemetry.enable()
        telemetry.reset()
        metrics = telemetry.get_metrics()
        store = ResultStore()
        store.contains("aa")
        assert metrics.counter_value("service.store.misses") == 0
