"""CLI observability flags and the satellite fixes that ride with them."""

import json

import pytest

from repro import cli, telemetry
from repro.circuit.defects import FloatingNode, OpenLocation
from repro.core.analysis import (
    ColumnFaultAnalyzer, SweepGrid, default_grid_for,
)
from repro.core.fault_primitives import parse_sos
from repro.experiments.reporting import ExperimentReport, instrumented


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def small_analyzer(**kwargs) -> ColumnFaultAnalyzer:
    grid = SweepGrid.make(r_min=3e3, r_max=3e6, n_r=3, n_u=3)
    return ColumnFaultAnalyzer(
        OpenLocation.BL_PRECHARGE_CELLS, grid=grid, **kwargs
    )


class TestCLIFlags:
    def test_no_flags_means_no_telemetry(self, capsys):
        assert cli.main(["fp-space"]) == 0
        out = capsys.readouterr().out
        assert "[telemetry]" not in out
        assert not telemetry.enabled()
        assert telemetry.get_metrics().is_empty()
        assert telemetry.get_tracer().spans == []

    def test_metrics_and_trace_files(self, capsys, tmp_path):
        metrics_file = tmp_path / "m.json"
        trace_file = tmp_path / "t.jsonl"
        code = cli.main([
            "fp-space",
            "--metrics-json", str(metrics_file),
            "--trace", str(trace_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[telemetry] fp-space:" in out
        assert not telemetry.enabled()  # flag restored after the run
        metrics = json.loads(metrics_file.read_text())
        assert "analyzer.cache_hit_ratio" in metrics["derived"]
        assert metrics["histograms"]["experiment.seconds"]["count"] == 1
        spans = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        assert any(s["name"] == "experiment.fp_space" for s in spans)

    def test_all_mode_summary_and_failure_diagnosis(self, capsys, monkeypatch):
        # Two tiny fake experiments, one failing.
        def make(name, holds):
            @instrumented(name)
            def runner():
                report = ExperimentReport(f"fake {name}")
                report.claim("c", "p", "m", holds)

                class Result:
                    pass

                result = Result()
                result.report = report
                return result

            return lambda jobs, res, gp, mg, ge: runner()

        monkeypatch.setattr(
            cli, "_EXPERIMENTS",
            {"good": make("good", True), "bad": make("bad", False)},
        )
        code = cli.main(["all"])
        out = capsys.readouterr().out
        assert code == 1
        assert "experiment" in out and "claims held" in out  # summary table
        assert "good" in out and "bad" in out
        assert "FAILED: claims do not hold in: bad" in out

    def test_profile_flag_prints_stats(self, capsys):
        assert cli.main(["fp-space", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # pstats header


class TestCLIGuardFlags:
    def _fake(self, monkeypatch, runner):
        monkeypatch.setattr(
            cli, "_EXPERIMENTS", {"fig3": runner}, raising=True
        )
        monkeypatch.setattr(cli, "_FANNED", frozenset({"fig3"}))
        monkeypatch.setattr(cli, "_GUARDED", frozenset({"fig3"}))

    def test_guard_policy_flag_reaches_the_experiment(
        self, capsys, monkeypatch
    ):
        from repro.circuit.network import GuardPolicy

        seen = {}

        def runner(jobs, res, gp, mg, ge):
            seen["policy"] = gp
            report = ExperimentReport("fake fig3")
            report.claim("c", "p", "m", True)

            class Result:
                pass

            result = Result()
            result.report = report
            result.quarantined = [(1e5, 1.65)]
            return result

        self._fake(monkeypatch, runner)
        assert cli.main(["fig3", "--guard-policy", "quarantine"]) == 0
        assert seen["policy"] is GuardPolicy.QUARANTINE
        out = capsys.readouterr().out
        assert "[guards] fig3: policy=quarantine, 1 grid point(s)" in out

    def test_without_guard_flags_no_guards_line(self, capsys, monkeypatch):
        def runner(jobs, res, gp, mg, ge):
            report = ExperimentReport("fake fig3")
            report.claim("c", "p", "m", True)
            return report

        self._fake(monkeypatch, runner)
        assert cli.main(["fig3"]) == 0
        assert "[guards]" not in capsys.readouterr().out

    def test_unknown_guard_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig3", "--guard-policy", "panic"])

    def test_invalid_spec_exits_2_with_one_line(self, capsys, monkeypatch):
        from repro.errors import SpecValidationError

        def runner(jobs, res, gp, mg, ge):
            raise SpecValidationError("SweepGrid", "r_max", 1.0, ">= r_min")

        self._fake(monkeypatch, runner)
        assert cli.main(["fig3"]) == 2
        err = capsys.readouterr().err
        assert "invalid spec" in err and "SweepGrid.r_max" in err
        assert "Traceback" not in err

    def test_solver_divergence_exits_3(self, capsys, monkeypatch):
        from repro.errors import SolverDivergenceError

        def runner(jobs, res, gp, mg, ge):
            raise SolverDivergenceError("nan", "non-finite node voltage")

        self._fake(monkeypatch, runner)
        assert cli.main(["fig3"]) == 3
        err = capsys.readouterr().err
        assert "solver guard" in err
        assert "Traceback" not in err

    def test_unknown_experiment_lists_valid_ones(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            cli.main(["mystery-experiment"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "table1" in err  # usage line enumerates the choices


class TestCacheSatellite:
    def test_cache_info_and_clear(self):
        analyzer = small_analyzer()
        sos = parse_sos("1r1")
        analyzer.observe(sos, 1e5, 0.0, FloatingNode.BIT_LINE)
        analyzer.observe(sos, 1e5, 0.0, FloatingNode.BIT_LINE)
        info = analyzer.cache_info()
        assert info.hits == 1
        assert info.misses == 1
        assert info.currsize == 1
        assert info.maxsize is None
        analyzer.cache_clear()
        info = analyzer.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_fifo_eviction_caps_cache(self):
        analyzer = small_analyzer(max_cache_entries=3)
        sos = parse_sos("1r1")
        for r in (1e4, 2e4, 3e4, 4e4, 5e4):
            analyzer.observe(sos, r, 0.0, FloatingNode.BIT_LINE)
        info = analyzer.cache_info()
        assert info.currsize == 3
        assert info.maxsize == 3
        # The oldest entry (r=1e4) was evicted: observing it again misses.
        misses_before = analyzer.cache_info().misses
        analyzer.observe(sos, 1e4, 0.0, FloatingNode.BIT_LINE)
        assert analyzer.cache_info().misses == misses_before + 1
        # The newest entry is still cached.
        hits_before = analyzer.cache_info().hits
        analyzer.observe(sos, 5e4, 0.0, FloatingNode.BIT_LINE)
        assert analyzer.cache_info().hits == hits_before + 1

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            small_analyzer(max_cache_entries=0)


class TestGridSatellites:
    def test_default_grid_forwards_u_min(self):
        grid = default_grid_for(OpenLocation.CELL, n_u=5, u_min=1.1)
        assert grid.u_values[0] == pytest.approx(1.1)
        assert grid.u_values[-1] == pytest.approx(3.3)

    def test_default_grid_u_min_defaults_to_zero(self):
        grid = default_grid_for(OpenLocation.CELL)
        assert grid.u_values[0] == 0.0

    def test_coarser_keeps_at_least_two_points(self):
        grid = SweepGrid.make(n_r=3, n_u=3)
        coarse = grid.coarser(every_r=5, every_u=5)
        assert coarse.r_values == (grid.r_values[0], grid.r_values[-1])
        assert coarse.u_values == (grid.u_values[0], grid.u_values[-1])

    def test_coarser_normal_subsampling_unchanged(self):
        grid = SweepGrid.make(n_r=8, n_u=6)
        coarse = grid.coarser()
        assert coarse.r_values == grid.r_values[::2]
        assert coarse.u_values == grid.u_values[::2]

    def test_coarser_single_point_axis_stays(self):
        grid = SweepGrid((1e3,), (0.0, 1.0, 2.0))
        coarse = grid.coarser(every_r=2, every_u=2)
        assert coarse.r_values == (1e3,)
        assert len(coarse.u_values) >= 2


class TestLogJsonFlag:
    def test_log_json_writes_correlated_event_lines(self, capsys, tmp_path):
        from repro.telemetry import events

        log_file = tmp_path / "events.jsonl"
        assert cli.main(["fp-space", "--log-json", str(log_file)]) == 0
        out = capsys.readouterr().out
        assert f"[events] wrote structured log to {log_file}" in out
        # the flag alone does not switch the [telemetry] summary on
        assert "[telemetry]" not in out
        with open(log_file, encoding="utf-8") as fh:
            names = [json.loads(line)["event"] for line in fh]
        assert names[0] == "cli.run.started"
        assert "experiment.started" in names
        assert "experiment.finished" in names
        assert names[-1] == "cli.run.finished"
        assert not events.enabled()  # handler detached after the run

    def test_stdout_identical_up_to_closing_line(self, capsys, tmp_path):
        assert cli.main(["fp-space"]) == 0
        plain = capsys.readouterr().out
        log_file = tmp_path / "events.jsonl"
        assert cli.main(["fp-space", "--log-json", str(log_file)]) == 0
        logged = capsys.readouterr().out
        assert logged.startswith(plain)
        assert logged[len(plain):] == (
            f"[events] wrote structured log to {log_file}\n"
        )

    def test_unwritable_log_path_rejected_up_front(self, tmp_path):
        with pytest.raises(SystemExit) as exit_info:
            cli.main([
                "fp-space", "--log-json",
                str(tmp_path / "no-such-dir" / "events.jsonl"),
            ])
        assert exit_info.value.code == 2
