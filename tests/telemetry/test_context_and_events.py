"""Trace-context propagation, span adoption, and the structured event log."""

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry import events
from repro.telemetry.context import TraceContext, new_trace_id
from repro.telemetry.tracer import Tracer


@pytest.fixture(autouse=True)
def clean_state():
    """Telemetry disabled/empty and no event-log handler around each test."""
    telemetry.disable()
    telemetry.reset()
    events.close()
    yield
    telemetry.disable()
    telemetry.reset()
    events.close()


class TestTraceContext:
    def test_round_trips_through_dict(self):
        ctx = TraceContext(trace_id="abc123", span_id=7, depth=2)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_from_dict_without_trace_is_none(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"trace": ""}) is None

    def test_new_trace_ids_are_short_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)  # hex or raise

    def test_current_context_none_while_disabled(self):
        assert telemetry.current_context() is None

    def test_current_context_tracks_open_span(self):
        telemetry.enable()
        root_ctx = telemetry.current_context()
        assert root_ctx.span_id is None
        with telemetry.span("outer") as sp:
            ctx = telemetry.current_context()
            assert ctx.trace_id == telemetry.get_tracer().trace_id
            assert ctx.span_id == sp.span_id
            assert ctx.depth == 0
        assert telemetry.current_context().span_id is None


class TestThreadLocalStacks:
    def test_each_thread_roots_its_own_tree(self):
        tracer = Tracer()

        def work():
            with tracer.span("thread-root"):
                with tracer.span("child"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = [s for s in tracer.spans if s.parent_id is None]
        children = [s for s in tracer.spans if s.parent_id is not None]
        assert len(roots) == 3 and len(children) == 3
        root_ids = {s.span_id for s in roots}
        for child in children:
            assert child.parent_id in root_ids
            assert child.depth == 1
        # span ids are allocated from one shared counter: all distinct
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == len(ids)


class TestAdoptState:
    def _remote_state(self):
        remote = Tracer()
        with remote.span("worker.unit", index=3):
            with remote.span("solver"):
                pass
        return remote, remote.export_state()

    def test_reparents_renumbers_and_rebrands(self):
        _, state = self._remote_state()
        local = Tracer()
        with local.span("service.job") as job_span:
            adopted = local.adopt_state(state, local.current_context())
        assert adopted == 2
        by_name = {s.name: s for s in local.spans}
        unit, solver = by_name["worker.unit"], by_name["solver"]
        assert unit.parent_id == job_span.span_id
        assert unit.depth == 1
        assert solver.parent_id == unit.span_id
        assert solver.depth == 2
        assert unit.trace_id == local.trace_id
        assert unit.attrs["remote"] is True
        assert unit.attrs["index"] == 3  # original attrs survive
        ids = [s.span_id for s in local.spans]
        assert len(set(ids)) == len(ids)

    def test_without_parent_roots_stay_roots(self):
        _, state = self._remote_state()
        local = Tracer()
        assert local.adopt_state(state, None) == 2
        unit = {s.name: s for s in local.spans}["worker.unit"]
        assert unit.parent_id is None
        assert unit.depth == 0

    def test_empty_state_is_a_noop(self):
        local = Tracer()
        assert local.adopt_state(None) == 0
        assert local.adopt_state({}) == 0
        assert local.adopt_state({"spans": []}) == 0
        assert local.spans == []

    def test_start_times_rebase_on_wall_epochs(self):
        remote = Tracer()
        with remote.span("worker.unit"):
            pass
        state = remote.export_state()
        state["epoch_wall"] = state["epoch_wall"] + 5.0  # pretend +5 s skew
        local = Tracer()
        local.adopt_state(state)
        span = local.spans[0]
        remote_start = remote.spans[0].start
        offset = state["epoch_wall"] - local._epoch_wall
        assert span.start == pytest.approx(remote_start + offset)


class TestExportAppendMode:
    def test_append_exports_only_new_spans(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "trace.jsonl")
        with tracer.span("first"):
            pass
        assert tracer.export_jsonl(path, mode="a") == 1
        with tracer.span("second"):
            pass
        assert tracer.export_jsonl(path, mode="a") == 1
        names = [
            json.loads(line)["name"]
            for line in open(path, encoding="utf-8")
        ]
        assert names == ["first", "second"]
        # nothing new: an append writes nothing
        assert tracer.export_jsonl(path, mode="a") == 0

    def test_truncate_mode_still_writes_everything(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "trace.jsonl")
        with tracer.span("first"):
            pass
        tracer.export_jsonl(path, mode="a")
        with tracer.span("second"):
            pass
        assert tracer.export_jsonl(path, mode="w") == 2

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Tracer().export_jsonl(str(tmp_path / "t.jsonl"), mode="x")

    def test_reset_forgets_exported_ids(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "trace.jsonl")
        with tracer.span("first"):
            pass
        tracer.export_jsonl(path, mode="a")
        tracer.reset()
        with tracer.span("again"):
            pass
        assert tracer.export_jsonl(path, mode="a") == 1


class TestEventLog:
    def read(self, path):
        with open(path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh]

    def test_emit_is_noop_unconfigured(self):
        assert not events.enabled()
        events.emit("anything", value=1)  # must not raise, must not write

    def test_configure_emit_close(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events.configure(path)
        assert events.enabled()
        events.emit("unit.test", n=3, label="x")
        events.close()
        assert not events.enabled()
        events.emit("after-close")  # dropped
        lines = self.read(path)
        assert len(lines) == 1
        record = lines[0]
        assert record["event"] == "unit.test"
        assert record["n"] == 3 and record["label"] == "x"
        assert isinstance(record["ts"], float)

    def test_bind_stamps_context_and_restores(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events.configure(path)
        with events.bind(job="j-1", experiment="table1"):
            events.emit("inner")
            with events.bind(job="j-2"):
                events.emit("nested")
        events.emit("outer")
        events.close()
        inner, nested, outer = self.read(path)
        assert inner["job"] == "j-1" and inner["experiment"] == "table1"
        assert nested["job"] == "j-2" and nested["experiment"] == "table1"
        assert "job" not in outer

    def test_trace_id_correlation_when_telemetry_on(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events.configure(path)
        events.emit("before")
        telemetry.enable()
        events.emit("during")
        events.close()
        before, during = self.read(path)
        assert "trace" not in before
        assert during["trace"] == telemetry.get_tracer().trace_id

    def test_call_fields_win_over_bound_context(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events.configure(path)
        with events.bind(job="bound"):
            events.emit("clash", job="explicit")
        events.close()
        assert self.read(path)[0]["job"] == "explicit"

    def test_non_serializable_values_are_stringified(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events.configure(path)
        events.emit("odd", obj=object())
        events.close()
        record = self.read(path)[0]
        assert isinstance(record["obj"], str)

    def test_reconfigure_replaces_handler(self, tmp_path):
        first = str(tmp_path / "first.jsonl")
        second = str(tmp_path / "second.jsonl")
        events.configure(first)
        events.emit("one")
        events.configure(second)
        events.emit("two")
        events.close()
        assert [r["event"] for r in self.read(first)] == ["one"]
        assert [r["event"] for r in self.read(second)] == ["two"]
