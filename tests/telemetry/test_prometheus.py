"""Prometheus text exposition and reservoir quantiles."""

import math

import pytest

from repro.telemetry.exposition import (
    CONTENT_TYPE, _escape_label, _format_value, _metric_name,
    render_prometheus,
)
from repro.telemetry.metrics import RESERVOIR_SIZE, Histogram, MetricsRegistry


def scrape(registry):
    return render_prometheus(registry.snapshot())


class TestNaming:
    def test_dotted_names_flatten_under_prefix(self):
        assert _metric_name("service.jobs.deduped") == (
            "repro_service_jobs_deduped"
        )

    def test_forbidden_characters_sanitized(self):
        assert _metric_name("cache-hits!") == "repro_cache_hits_"

    def test_leading_digit_without_prefix_gets_underscore(self):
        assert _metric_name("0bad", prefix="") == "_0bad"

    def test_counters_gain_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs.submitted").inc(3)
        text = scrape(registry)
        assert "# TYPE repro_service_jobs_submitted_total counter" in text
        assert "\nrepro_service_jobs_submitted_total 3" in (
            "\n" + text
        )
        # the bare (non-_total) name never appears as a sample line
        assert "\nrepro_service_jobs_submitted 3" not in "\n" + text


class TestEscaping:
    def test_label_value_escapes(self):
        assert _escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_value_formatting(self):
        assert _format_value(None) == "NaN"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(0.25) == "0.25"


class TestRendering:
    def test_gauge_line(self):
        registry = MetricsRegistry()
        registry.gauge("store.entries").set(5.0)
        text = scrape(registry)
        assert "# TYPE repro_store_entries gauge" in text
        assert "repro_store_entries 5.0" in text

    def test_histogram_renders_as_summary_with_quantiles(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("job.seconds").observe(value)
        text = scrape(registry)
        assert "# TYPE repro_job_seconds summary" in text
        assert 'repro_job_seconds{quantile="0.5"} 2.0' in text
        assert 'repro_job_seconds{quantile="0.95"} 4.0' in text
        assert 'repro_job_seconds{quantile="0.99"} 4.0' in text
        assert "repro_job_seconds_sum 10.0" in text
        assert "repro_job_seconds_count 4" in text
        assert "repro_job_seconds_min 1.0" in text
        assert "repro_job_seconds_max 4.0" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
        assert render_prometheus({"counters": {}, "gauges": {}}) == ""

    def test_output_is_sorted_and_byte_stable(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        registry.gauge("mid").set(1.0)
        first, second = scrape(registry), scrape(registry)
        assert first == second
        assert first.index("repro_alpha_total") < first.index(
            "repro_zeta_total"
        )
        assert first.endswith("\n")

    def test_content_type_names_the_text_format(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE


class TestReservoirQuantiles:
    def test_nearest_rank_on_full_population(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.quantile(0.5) == 50.0
        assert hist.quantile(0.95) == 95.0
        assert hist.quantile(0.99) == 99.0

    def test_empty_histogram_has_no_quantiles(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["p50"] is None and snap["count"] == 0

    def test_reservoir_is_bounded_and_deterministic(self):
        def build():
            hist = Histogram("bounded")
            for value in range(10 * RESERVOIR_SIZE):
                hist.observe(float(value))
            return hist

        first, second = build(), build()
        assert len(first.snapshot()["samples"]) == RESERVOIR_SIZE
        # seeded per-name RNG: two identical runs sample identically
        assert first.snapshot()["samples"] == second.snapshot()["samples"]
        # the quantiles stay in the observed range and ordered
        p50, p99 = first.quantile(0.5), first.quantile(0.99)
        assert 0.0 <= p50 <= p99 <= float(10 * RESERVOIR_SIZE - 1)

    def test_merge_summary_weights_by_count(self):
        left = Histogram("merge")
        for value in (1.0, 3.0):
            left.observe(value)
        right = Histogram("other")
        for value in (5.0, 7.0, 9.0):
            right.observe(value)
        left.merge_summary(right.snapshot())
        snap = left.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(25.0)
        assert snap["mean"] == pytest.approx(5.0)
        assert snap["min"] == 1.0 and snap["max"] == 9.0
        assert left.quantile(0.5) == 5.0

    def test_merge_summary_derives_sum_from_mean(self):
        hist = Histogram("legacy")
        hist.merge_summary({"count": 4, "mean": 2.5, "min": 1.0, "max": 4.0})
        snap = hist.snapshot()
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["count"] == 4

    def test_merge_summary_empty_is_noop(self):
        hist = Histogram("noop")
        hist.merge_summary({"count": 0})
        hist.merge_summary({})
        assert hist.snapshot()["count"] == 0

    def test_merged_reservoir_feeds_prometheus_quantiles(self):
        registry = MetricsRegistry()
        worker = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            worker.histogram("unit.seconds").observe(value)
        registry.merge_snapshot(worker.snapshot())
        text = scrape(registry)
        assert 'repro_unit_seconds{quantile="0.5"} 2.0' in text

    def test_nan_sum_renders_nan_not_crash(self):
        text = render_prometheus(
            {"histograms": {"odd": {
                "count": 1, "sum": float("nan"), "min": None, "max": None,
                "p50": None, "p95": None, "p99": None,
            }}}
        )
        assert "repro_odd_sum NaN" in text
        assert 'repro_odd{quantile="0.5"} NaN' in text
        assert not math.isnan(text.count("NaN"))  # sanity: parses as text
