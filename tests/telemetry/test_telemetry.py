"""Telemetry subsystem tests: metrics, spans, no-op strictness, wiring."""

import json

import pytest

from repro import telemetry
from repro.circuit.defects import FloatingNode, OpenLocation
from repro.core.analysis import ColumnFaultAnalyzer, SweepGrid


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends disabled with empty global state."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def small_analyzer(**kwargs) -> ColumnFaultAnalyzer:
    grid = SweepGrid.make(r_min=3e3, r_max=3e6, n_r=3, n_u=3)
    return ColumnFaultAnalyzer(
        OpenLocation.BL_PRECHARGE_CELLS, grid=grid, **kwargs
    )


class TestDisabledIsStrictNoop:
    def test_helpers_touch_nothing(self):
        telemetry.count("c", 5)
        telemetry.gauge("g", 1.0)
        telemetry.observe("h", 2.0)
        assert telemetry.get_metrics().is_empty()

    def test_span_records_nothing(self):
        with telemetry.span("outer", a=1) as sp:
            sp.set(b=2)
            with telemetry.span("inner"):
                pass
        assert telemetry.get_tracer().spans == []

    def test_timer_records_nothing(self):
        with telemetry.timer("t"):
            pass
        assert telemetry.get_metrics().is_empty()

    def test_instrumented_survey_records_nothing(self):
        analyzer = small_analyzer()
        analyzer.survey(floating=FloatingNode.BIT_LINE, probes=("1r1",))
        assert telemetry.get_metrics().is_empty()
        assert telemetry.get_tracer().spans == []

    def test_report_render_has_no_timing_block(self):
        from repro.experiments.fig3 import run_fig3

        report = run_fig3(n_r=4, n_u=4).report
        assert report.timing is None
        assert "timing" not in report.render()


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        telemetry.enable()
        telemetry.count("events")
        telemetry.count("events", 4)
        telemetry.gauge("level", 7.5)
        for v in (1.0, 3.0):
            telemetry.observe("sizes", v)
        reg = telemetry.get_metrics()
        assert reg.counter_value("events") == 5
        assert reg.gauge_value("level") == 7.5
        hist = reg.histogram("sizes").snapshot()
        assert hist == {
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
            "p50": 1.0, "p95": 3.0, "p99": 3.0, "samples": [1.0, 3.0],
        }

    def test_counter_value_defaults_to_zero(self):
        assert telemetry.get_metrics().counter_value("never") == 0

    def test_snapshot_and_reset(self):
        telemetry.enable()
        telemetry.count("a")
        snap = telemetry.get_metrics().snapshot()
        assert snap["counters"]["a"] == 1
        telemetry.reset()
        assert telemetry.get_metrics().is_empty()

    def test_timer_observes_wall_seconds(self):
        telemetry.enable()
        with telemetry.timer("block.seconds"):
            pass
        hist = telemetry.get_metrics().histogram("block.seconds")
        assert hist.count == 1
        assert hist.total >= 0.0


class TestTracer:
    def test_nesting_and_jsonl_round_trip(self, tmp_path):
        telemetry.enable()
        with telemetry.span("outer", kind="demo") as outer:
            outer.set(extra=3)
            with telemetry.span("inner", idx=1):
                pass
        path = tmp_path / "trace.jsonl"
        n = telemetry.get_tracer().export_jsonl(str(path))
        assert n == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        by_name = {l["name"]: l for l in lines}
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["outer"]["attrs"] == {"kind": "demo", "extra": 3}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["attrs"] == {"idx": 1}
        for line in lines:
            assert line["duration"] >= 0.0

    def test_spans_are_start_ordered(self):
        telemetry.enable()
        with telemetry.span("first"):
            pass
        with telemetry.span("second"):
            with telemetry.span("second.child"):
                pass
        names = [s.name for s in telemetry.get_tracer().spans]
        assert names == ["first", "second", "second.child"]

    def test_spans_named_prefix(self):
        telemetry.enable()
        with telemetry.span("experiment.fig3"):
            pass
        with telemetry.span("analyzer.survey"):
            pass
        named = telemetry.get_tracer().spans_named("experiment")
        assert [s.name for s in named] == ["experiment.fig3"]

    def test_error_is_annotated(self):
        telemetry.enable()
        with pytest.raises(RuntimeError):
            with telemetry.span("doomed"):
                raise RuntimeError("boom")
        (span,) = telemetry.get_tracer().spans
        assert span.attrs["error"] == "RuntimeError"

    def test_broken_finalization_does_not_mask_the_body_exception(
        self, monkeypatch
    ):
        # Regression: when the span body raises AND _finish blows up
        # (corrupted tracer state), the caller must still see the body's
        # exception — not the finalization's.
        telemetry.enable()
        tracer = telemetry.get_tracer()

        def broken_finish(span):
            raise ZeroDivisionError("tracer stack corrupted")

        monkeypatch.setattr(tracer, "_finish", broken_finish)
        with pytest.raises(RuntimeError, match="the real failure"):
            with telemetry.span("doomed"):
                raise RuntimeError("the real failure")

    def test_broken_finalization_still_raises_on_clean_exit(
        self, monkeypatch
    ):
        # With no in-flight exception there is nothing to mask: a broken
        # finalization must surface, not be swallowed.
        telemetry.enable()
        tracer = telemetry.get_tracer()

        def broken_finish(span):
            raise ZeroDivisionError("tracer stack corrupted")

        monkeypatch.setattr(tracer, "_finish", broken_finish)
        with pytest.raises(ZeroDivisionError):
            with telemetry.span("fine"):
                pass


class TestSurveyMetricsSelfConsistent:
    def test_hits_plus_misses_equals_observe_calls(self):
        telemetry.enable()
        analyzer = small_analyzer()
        analyzer.survey(floating=FloatingNode.BIT_LINE, probes=("1r1",))
        analyzer.survey(floating=FloatingNode.BIT_LINE, probes=("1r1",))
        reg = telemetry.get_metrics()
        calls = reg.counter_value("analyzer.observe_calls")
        hits = reg.counter_value("analyzer.cache_hits")
        misses = reg.counter_value("analyzer.cache_misses")
        assert calls == 18  # two surveys x 3x3 grid
        assert hits + misses == calls
        assert misses == 9  # second survey fully cached
        assert hits == 9
        assert reg.counter_value("analyzer.sos_executions") == misses
        assert reg.counter_value("analyzer.grid_points") == calls
        info = analyzer.cache_info()
        assert (info.hits, info.misses) == (hits, misses)
        assert reg.gauge_value("analyzer.cache_size") == info.currsize

    def test_survey_emits_solver_and_column_counters_and_span(self):
        telemetry.enable()
        analyzer = small_analyzer()
        analyzer.survey(floating=FloatingNode.BIT_LINE, probes=("1r1",))
        reg = telemetry.get_metrics()
        # The grid engine settles whole tiles at once; scalar settles only
        # happen on demoted points, so either counter may carry the work.
        settles = (
            reg.counter_value("solver.settles")
            + reg.counter_value("solver.grid_settles")
        )
        assert settles > 0
        assert reg.counter_value("column.reads") > 0
        (span,) = telemetry.get_tracer().spans_named("analyzer.survey")
        assert span.attrs["location"] == "BL_PRECHARGE_CELLS"
        assert span.attrs["probes"] == 1


class TestProfiler:
    def test_profiled_report_names_hot_functions(self):
        from repro.telemetry import profiled

        def busy():
            return sum(i * i for i in range(1000))

        with profiled() as prof:
            busy()
        assert "busy" in prof.report()
