"""Thread safety of the metrics registry.

The sweep service records into the process-global registry from HTTP
handler threads and scheduler workers concurrently; these tests assert
the single-registry-lock design gives exact counts and internally
consistent snapshots under contention.
"""

import threading

from repro.telemetry import MetricsRegistry


def _run_threads(n, target):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentMutation:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        workers, per_worker = 8, 2000

        def work(_):
            counter = registry.counter("contended")
            for _unused in range(per_worker):
                counter.inc()

        _run_threads(workers, work)
        assert registry.counter_value("contended") == workers * per_worker

    def test_lazy_instrument_creation_is_race_free(self):
        registry = MetricsRegistry()
        instances = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def work(_):
            barrier.wait()
            counter = registry.counter("first-use")
            counter.inc()
            with lock:
                instances.append(counter)

        _run_threads(8, work)
        # Every thread must have incremented the same instrument.
        assert all(inst is instances[0] for inst in instances)
        assert registry.counter_value("first-use") == 8

    def test_histogram_observations_are_exact(self):
        registry = MetricsRegistry()
        workers, per_worker = 6, 500

        def work(index):
            histogram = registry.histogram("samples")
            for unit in range(per_worker):
                histogram.observe(index * per_worker + unit)

        _run_threads(workers, work)
        summary = registry.histogram("samples").snapshot()
        total = workers * per_worker
        assert summary["count"] == total
        assert summary["sum"] == sum(range(total))
        assert summary["min"] == 0 and summary["max"] == total - 1

    def test_merge_snapshot_concurrent_with_increments(self):
        registry = MetricsRegistry()
        workers, per_worker = 4, 300

        def merger(_):
            for _unused in range(per_worker):
                registry.merge_snapshot({
                    "counters": {"merged": 1},
                    "histograms": {
                        "h": {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0}
                    },
                })

        def incrementer(_):
            for _unused in range(per_worker):
                registry.counter("merged").inc()

        threads = [
            threading.Thread(target=merger, args=(i,)) for i in range(workers)
        ] + [
            threading.Thread(target=incrementer, args=(i,))
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 2 * workers * per_worker
        assert registry.counter_value("merged") == expected
        histogram = registry.histogram("h").snapshot()
        assert histogram["count"] == workers * per_worker
        assert histogram["sum"] == 2.0 * workers * per_worker


class TestConcurrentSnapshots:
    def test_snapshots_stay_internally_consistent(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        bad = []

        def snapshotter():
            while not stop.is_set():
                snap = registry.snapshot()
                # "a" is always incremented before "b", both under the
                # registry lock, so a consistent snapshot can never show
                # b ahead of a.
                a = snap["counters"].get("a", 0)
                b = snap["counters"].get("b", 0)
                if b > a:
                    bad.append((a, b))

        def writer():
            for _unused in range(3000):
                registry.counter("a").inc()
                registry.counter("b").inc()

        reader = threading.Thread(target=snapshotter)
        reader.start()
        _run_threads(2, lambda _i: writer())
        stop.set()
        reader.join()
        assert not bad
        assert registry.counter_value("a") == 6000
        assert registry.counter_value("b") == 6000


class TestSharedLockDesign:
    def test_instruments_share_the_registry_lock(self):
        registry = MetricsRegistry()
        assert registry.counter("c")._lock is registry._lock
        assert registry.gauge("g")._lock is registry._lock
        assert registry.histogram("h")._lock is registry._lock

    def test_standalone_instruments_get_their_own_lock(self):
        from repro.telemetry import Counter

        counter = Counter("solo")
        counter.inc()
        assert counter.snapshot() == 1