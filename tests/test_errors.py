"""Spec validation and the structured error taxonomy.

Property tests: whatever malformed value Hypothesis finds, ``validate()``
must reject it with a :class:`SpecValidationError` whose message names
the spec, the field and the legal range — never a bare TypeError or a
silently accepted spec.
"""

import math
from dataclasses import replace

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.circuit.defects import OpenDefect, OpenLocation
from repro.circuit.technology import Technology, default_technology
from repro.core.analysis import SweepGrid
from repro.errors import (
    CheckpointMismatchError,
    InjectionError,
    QuarantinedPointError,
    ReproError,
    SolverDivergenceError,
    SpecValidationError,
)
from repro.parallel import AnalyzerSpec


class TestTaxonomy:
    def test_every_error_is_a_repro_error(self):
        for exc_type in (
            SpecValidationError,
            SolverDivergenceError,
            QuarantinedPointError,
            CheckpointMismatchError,
            InjectionError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_spec_validation_error_is_a_value_error(self):
        # Pre-taxonomy call sites catch ValueError; the subclassing keeps
        # them working.
        assert issubclass(SpecValidationError, ValueError)

    def test_spec_validation_message_is_actionable(self):
        err = SpecValidationError(
            "Technology", "c_cell", -1.0, "> 0 F", hint="capacitance"
        )
        text = str(err)
        assert "Technology.c_cell" in text
        assert "-1.0" in text
        assert "> 0 F" in text
        assert "capacitance" in text

    def test_solver_divergence_carries_guard_and_context(self):
        err = SolverDivergenceError("rail", "escaped hull", phase="sense")
        assert err.guard == "rail"
        assert err.context["phase"] == "sense"
        assert "rail" in str(err) and "phase=sense" in str(err)

    def test_checkpoint_mismatch_names_both_signatures(self):
        err = CheckpointMismatchError(
            "/tmp/store.jsonl", "r16u12", "r4u3", "survey|CELL|..."
        )
        text = str(err)
        assert "/tmp/store.jsonl" in text
        assert "r16u12" in text and "r4u3" in text


class TestTechnologyValidate:
    @given(bad=st.floats(max_value=0.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_rejects_nonpositive_capacitance(self, bad):
        tech = replace(default_technology(), c_cell=bad)
        with pytest.raises(SpecValidationError) as exc_info:
            tech.validate()
        assert "c_cell" in str(exc_info.value)

    @given(
        field=st.sampled_from(["vdd", "c_bl_cells", "r_access", "t_sense"]),
        bad=st.sampled_from([math.nan, math.inf, -math.inf]),
    )
    @settings(max_examples=20, deadline=None)
    def test_rejects_non_finite_fields(self, field, bad):
        tech = replace(default_technology(), **{field: bad})
        with pytest.raises(SpecValidationError) as exc_info:
            tech.validate()
        assert field in str(exc_info.value)

    def test_default_technology_is_valid(self):
        assert default_technology().validate() is not None

    def test_level_outside_supply_rejected(self):
        tech = replace(default_technology(), v_precharge=9.9)
        with pytest.raises(SpecValidationError):
            tech.validate()


class TestOpenDefectValidate:
    @given(bad=st.sampled_from([math.nan, -math.inf]) | st.floats(
        max_value=-1e-9, allow_nan=False, allow_infinity=False
    ))
    @settings(max_examples=30, deadline=None)
    def test_rejects_non_finite_or_negative_resistance(self, bad):
        # NaN sneaks past __post_init__'s `< 0` comparison; validate()
        # must still reject it.
        defect = OpenDefect.__new__(OpenDefect)
        object.__setattr__(defect, "location", OpenLocation.CELL)
        object.__setattr__(defect, "resistance", bad)
        object.__setattr__(defect, "row", 0)
        with pytest.raises(SpecValidationError) as exc_info:
            defect.validate()
        assert "resistance" in str(exc_info.value)

    def test_infinite_resistance_is_a_full_open_and_valid(self):
        OpenDefect(OpenLocation.CELL, math.inf).validate()

    def test_row_beyond_array_rejected(self):
        defect = OpenDefect(OpenLocation.CELL, 1e5, row=7)
        with pytest.raises(SpecValidationError):
            defect.validate(n_rows=3)


class TestSweepGridValidate:
    @given(
        r_min=st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
        factor=st.floats(min_value=1.001, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_rejects_inverted_resistance_bounds(self, r_min, factor):
        with pytest.raises(SpecValidationError) as exc_info:
            SweepGrid.make(r_min=r_min * factor, r_max=r_min)
        assert "r_max" in str(exc_info.value)

    @given(u=st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_rejects_inverted_voltage_bounds(self, u):
        with pytest.raises(SpecValidationError):
            SweepGrid.make(u_min=u + 0.5, u_max=u)

    @given(bad=st.sampled_from([math.nan, math.inf, 0.0, -5.0]))
    @settings(max_examples=10, deadline=None)
    def test_rejects_bad_r_min(self, bad):
        with pytest.raises(SpecValidationError):
            SweepGrid.make(r_min=bad)

    def test_valid_grid_roundtrips(self):
        grid = SweepGrid.make(n_r=4, n_u=3)
        assert grid.validate() is grid


class TestAnalyzerSpecValidate:
    def test_valid_spec_passes(self):
        spec = AnalyzerSpec(OpenLocation.CELL)
        assert spec.validate() is spec

    def test_bad_victim_row_rejected(self):
        spec = AnalyzerSpec(OpenLocation.CELL, n_rows=2, victim_row=5)
        with pytest.raises(SpecValidationError) as exc_info:
            spec.validate()
        assert "victim_row" in str(exc_info.value)

    def test_bad_guard_policy_rejected(self):
        spec = AnalyzerSpec(OpenLocation.CELL, guard_policy="quarantine")
        with pytest.raises(SpecValidationError):
            spec.validate()

    def test_nested_technology_is_validated(self):
        tech = replace(default_technology(), c_cell=-1.0)
        with pytest.raises(SpecValidationError):
            AnalyzerSpec(OpenLocation.CELL, technology=tech).validate()
