"""Smoke tests: the example scripts' entry points run and stay truthful."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs_and_tells_the_story(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "fault masked" in out
    assert "<1v [w0BL] r1v/0/0>" in out
    assert "March PF+ guarantees detection: True" in out
    assert "w1-r1 guarantees detection: False" in out


def test_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert scripts == [
        "bist_flow.py",
        "defect_characterization.py",
        "field_return_diagnosis.py",
        "march_test_screening.py",
        "quickstart.py",
        "region_maps.py",
    ]
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith("#!"), script
        assert '"""' in text, script
