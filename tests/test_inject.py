"""Chaos suite: every injector of ``repro.inject`` trips its guard.

Each test injects one fault class deterministically (fixed seed /
targeted operating point) and asserts the matching guard fires: the nan
result guard, the rail hull guard, the propagator-cache finiteness
guard with eviction, and the checkpoint torn-tail recovery.  The
acceptance scenario — a survey under ``GuardPolicy.QUARANTINE`` with an
injected solver NaN at one grid point completes with exactly that point
quarantined and an otherwise identical inventory — lives here too.
"""

import math
import os
import signal

import pytest

from repro import telemetry
from repro.circuit import network
from repro.circuit.column import DRAMColumn
from repro.circuit.defects import OpenDefect, OpenLocation
from repro.circuit.network import (
    GuardPolicy,
    solver_guards_configure,
    solver_guards_info,
)
from repro.core.analysis import ColumnFaultAnalyzer, SweepGrid
from repro.errors import InjectionError, SolverDivergenceError
from repro.inject import (
    CheckpointTailTruncator,
    JournalTailTruncator,
    ProcessKiller,
    PropagatorCacheCorruptor,
    SolverNaNInjector,
    StoreCorruptor,
    VoltagePerturbationInjector,
    run_injection_campaign,
)
from repro.io import CheckpointStore


@pytest.fixture(autouse=True)
def _pristine_guards_and_hooks():
    """Every test starts and ends with default guards, no hook, cold cache."""
    network._install_solver_fault_hook(None)
    solver_guards_configure(
        nan_checks=True, policy=GuardPolicy.RAISE, condition_checks=False
    )
    network.Network.cache_clear()
    telemetry.reset()
    telemetry.enable()
    yield
    telemetry.disable()
    network._install_solver_fault_hook(None)
    solver_guards_configure(
        nan_checks=True, policy=GuardPolicy.RAISE, condition_checks=False
    )
    network.Network.cache_clear()


def _counter(name):
    return telemetry.get_metrics().counter_value(name)


def _column():
    return DRAMColumn(defect=OpenDefect(OpenLocation.CELL, 1e5))


def _write_then_read(column):
    column.write(0, 1)
    return column.read(0)


GRID = SweepGrid.make(r_min=1e4, r_max=1e6, n_r=3, n_u=3)


def _survey(guard_policy=None):
    analyzer = ColumnFaultAnalyzer(
        OpenLocation.CELL, grid=GRID, guard_policy=guard_policy
    )
    findings = [
        (f.ffm, f.probe_sos.to_string(), f.floating) for f in analyzer.survey()
    ]
    return findings, analyzer


class TestSolverNaNInjector:
    def test_needs_a_trigger(self):
        with pytest.raises(InjectionError):
            SolverNaNInjector()

    def test_raise_policy_detects_the_nan(self):
        with SolverNaNInjector(at_solve=1) as injector:
            with pytest.raises(SolverDivergenceError) as exc_info:
                _write_then_read(_column())
        assert injector.fires == 1
        assert exc_info.value.guard == "nan"
        # The guard names the simulation phase it tripped in.
        assert "phase" in exc_info.value.context
        assert _counter("solver.guard_nan") == 1
        assert _counter("solver.guard_trips") == 1

    def test_targeted_quarantine_matches_clean_inventory(self):
        # The acceptance scenario: inject a NaN at exactly one grid
        # point; under QUARANTINE the survey completes, reports exactly
        # that point, and finds the same inventory as a clean run.
        clean, _ = _survey()
        target = (GRID.r_values[0], GRID.u_values[1])
        network.Network.cache_clear()
        with SolverNaNInjector(target=target):
            injected, analyzer = _survey(guard_policy=GuardPolicy.QUARANTINE)
        assert injected == clean
        points = {(p.r_def, p.u) for p in analyzer.quarantined}
        assert points == {target}
        assert all(p.guard == "nan" for p in analyzer.quarantined)
        assert _counter("analyzer.quarantined_points") == len(
            analyzer.quarantined
        )
        assert _counter("solver.guard_nan") > 0

    def test_batched_solve_quarantines_only_the_hit_lane(self):
        target = (GRID.r_values[1], GRID.u_values[2])
        with SolverNaNInjector(target=target):
            analyzer = ColumnFaultAnalyzer(
                OpenLocation.CELL, grid=GRID,
                guard_policy=GuardPolicy.QUARANTINE,
            )
            analyzer.survey()
        points = {(p.r_def, p.u) for p in analyzer.quarantined}
        assert points == {target}
        # The batch guard re-ran the column scalar to isolate the lane.
        assert _counter("analyzer.batch_fallbacks") > 0


class TestVoltagePerturbationInjector:
    def test_rejects_bad_amplitude(self):
        with pytest.raises(InjectionError):
            VoltagePerturbationInjector(amplitude=0.0)

    def test_large_noise_trips_the_rail_guard(self):
        margin = solver_guards_info().rail_margin
        with VoltagePerturbationInjector(amplitude=40 * margin, seed=7):
            with pytest.raises(SolverDivergenceError) as exc_info:
                _write_then_read(_column())
        assert exc_info.value.guard == "rail"
        assert _counter("solver.guard_rail") >= 1
        assert "overshoot_v" in exc_info.value.context

    def test_small_noise_is_masked(self):
        with VoltagePerturbationInjector(amplitude=1e-9, seed=7) as injector:
            _write_then_read(_column())
        assert injector.fires > 0
        assert _counter("solver.guard_trips") == 0

    def test_transient_fault_recovered_by_fallback(self):
        # FALLBACK recomputes the phase in sub-steps without the hook,
        # so a one-solve transient is absorbed and counted.
        solver_guards_configure(policy=GuardPolicy.FALLBACK)
        margin = solver_guards_info().rail_margin
        with VoltagePerturbationInjector(
            amplitude=40 * margin, seed=7, at_solve=1
        ):
            result = _write_then_read(_column())
        assert result in (0, 1)
        assert _counter("solver.guard_fallbacks") >= 1
        assert _counter("solver.guard_trips") >= 1

    def test_same_seed_same_stream(self):
        captured = []
        for _ in range(2):
            solver_guards_configure(nan_checks=False)
            with VoltagePerturbationInjector(amplitude=0.1, seed=3):
                column = _column()
                column.write(0, 1)
                captured.append(dict(column.net.voltages()))
            solver_guards_configure(nan_checks=True)
            network.Network.cache_clear()
        assert captured[0] == captured[1]


class TestPropagatorCacheCorruptor:
    def test_empty_cache_is_an_injection_error(self):
        with pytest.raises(InjectionError):
            PropagatorCacheCorruptor().arm()

    def test_corrupted_entry_trips_guard_and_is_evicted(self):
        _write_then_read(_column())  # warm the propagator cache
        corruptor = PropagatorCacheCorruptor(seed=1, n_entries=1)
        corruptor.arm()
        assert corruptor.fires == 1
        (key,) = corruptor.corrupted_keys
        assert key in network._PROPAGATORS._data
        with pytest.raises(SolverDivergenceError) as exc_info:
            _write_then_read(_column())
        assert exc_info.value.guard == "nan"
        # _on_trip must have evicted the poisoned propagator...
        assert key not in network._PROPAGATORS._data
        corruptor.disarm()
        # ...so the next run recomputes it and succeeds.
        assert _write_then_read(_column()) in (0, 1)


class TestCheckpointTailTruncator:
    def test_missing_file_is_an_injection_error(self, tmp_path):
        with pytest.raises(InjectionError):
            CheckpointTailTruncator(str(tmp_path / "nope.jsonl")).arm()

    def test_torn_tail_is_skipped_on_resume(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with CheckpointStore(path) as store:
            store.record("alpha", 1)
            store.record("beta", 2)
        truncator = CheckpointTailTruncator(path, seed=11, max_bytes=10)
        truncator.arm()
        assert truncator.fires == 1
        assert 1 <= truncator.bytes_dropped <= 10
        loaded = CheckpointStore(path).load()
        # The torn final record is dropped, never half-parsed; the
        # intact prefix survives.
        assert loaded.get("alpha") == 1
        assert "beta" not in loaded


class TestStoreCorruptor:
    def _store_with_docs(self, tmp_path, n=3):
        from repro.service.store import ResultStore

        store = ResultStore(root=str(tmp_path / "store"))
        for i in range(n):
            store.put(f"addr{i}", {"value": i})
        return store

    def test_flip_is_caught_by_the_digest_check(self, tmp_path):
        store = self._store_with_docs(tmp_path)
        corruptor = StoreCorruptor(store.root, seed=3, n_entries=1)
        corruptor.arm()
        assert corruptor.fires == 1 and len(corruptor.corrupted_paths) == 1
        # A fresh store over the same directory must quarantine the
        # damaged document on rebuild, never serve it.
        from repro.service.store import ResultStore

        reopened = ResultStore(root=store.root)
        assert len(reopened) == 2
        assert reopened.corrupt == 1
        damaged = os.path.basename(corruptor.corrupted_paths[0])
        assert not os.path.exists(
            os.path.join(store.root, damaged)
        )

    def test_truncate_mode_and_determinism(self, tmp_path):
        store = self._store_with_docs(tmp_path)
        first = StoreCorruptor(
            store.root, seed=9, n_entries=2, mode="truncate"
        )
        first.arm()
        assert first.fires == 2
        # Same seed picks the same files.
        second = StoreCorruptor(
            store.root, seed=9, n_entries=2, mode="truncate"
        )
        second.arm()
        assert [os.path.basename(p) for p in first.corrupted_paths] == [
            os.path.basename(p) for p in second.corrupted_paths
        ]

    def test_empty_store_is_an_injection_error(self, tmp_path):
        os.makedirs(str(tmp_path / "empty"))
        with pytest.raises(InjectionError):
            StoreCorruptor(str(tmp_path / "empty")).arm()

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(InjectionError):
            StoreCorruptor(str(tmp_path), mode="shred")


class TestJournalTailTruncator:
    def test_replay_skips_the_torn_record(self, tmp_path):
        from repro.service.journal import JobJournal

        path = str(tmp_path / "jobs.journal")
        with JobJournal(path) as journal:
            journal.submit("j1", "addr1", {"experiment": "x"})
            journal.submit("j2", "addr2", {"experiment": "x"})
        truncator = JournalTailTruncator(path, seed=11, max_bytes=10)
        truncator.arm()
        assert truncator.name == "journal-truncation"
        replayed = JobJournal(path)
        assert [e.job for e in replayed.replay()] == ["j1"]
        assert replayed.stats.torn == 1


class TestProcessKiller:
    def test_refuses_init_and_self(self):
        with pytest.raises(InjectionError):
            ProcessKiller(1)
        with pytest.raises(InjectionError):
            ProcessKiller(os.getpid())

    def test_kills_a_child_process(self):
        import subprocess
        import sys

        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"]
        )
        try:
            killer = ProcessKiller(child.pid)
            killer.arm()
            assert killer.fires == 1
            assert child.wait(timeout=10) == -signal.SIGKILL
        finally:
            if child.poll() is None:
                child.kill()

    def test_unknown_pid_is_an_injection_error(self):
        import subprocess
        import sys

        # A pid that existed but is gone by the time we signal it.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait(timeout=10)
        with pytest.raises(InjectionError):
            ProcessKiller(child.pid).arm()


class TestHookExclusivity:
    def test_arming_over_an_armed_hook_raises(self):
        with SolverNaNInjector(at_solve=1):
            with pytest.raises(InjectionError):
                VoltagePerturbationInjector(amplitude=1.0).arm()


class TestCampaign:
    def test_verdicts_cover_the_guard_matrix(self):
        margin = solver_guards_info().rail_margin
        injectors = [
            SolverNaNInjector(at_solve=10 ** 9),                 # dormant
            VoltagePerturbationInjector(amplitude=1e-9, seed=1),  # masked
            VoltagePerturbationInjector(amplitude=40 * margin, seed=1),
            SolverNaNInjector(at_solve=1),                        # detected
        ]
        report = run_injection_campaign(injectors, lambda: _write_then_read(_column()))
        verdicts = [result.verdict for result in report.results]
        assert verdicts == ["dormant", "masked", "detected", "detected"]
        nan_run = report.results[3]
        assert nan_run.error == "SolverDivergenceError"
        assert nan_run.counters.get("solver.guard_nan", 0) >= 1
        assert not report.all_guarded or all(
            v in ("contained", "detected") for v in verdicts[2:]
        )
        rendered = report.render()
        assert "[injection campaign]" in rendered
        assert "detected" in rendered

    def test_quarantine_contains_the_fault(self):
        solver_guards_configure(policy=GuardPolicy.QUARANTINE)
        target = (GRID.r_values[0], GRID.u_values[0])

        def workload():
            findings, analyzer = _survey(GuardPolicy.QUARANTINE)
            return findings

        report = run_injection_campaign([SolverNaNInjector(target=target)], workload)
        (result,) = report.results
        assert result.verdict == "contained"
        assert result.error is None
        assert result.counters.get("analyzer.quarantined_points", 0) >= 1
        assert report.all_guarded

    def test_campaign_is_deterministic(self):
        def build():
            return [
                VoltagePerturbationInjector(amplitude=1e-9, seed=5),
                SolverNaNInjector(at_solve=2),
            ]

        def run_once():
            network.Network.cache_clear()
            report = run_injection_campaign(build(), lambda: _write_then_read(_column()))
            return [
                (r.injector, r.fired, r.verdict, r.error)
                for r in report.results
            ]

        assert run_once() == run_once()

    def test_expectation_check_flags_silent_corruption(self):
        # Disable the guards entirely: a fired fault that skews the read
        # result with no guard to catch it must classify as escaped.
        solver_guards_configure(nan_checks=False)
        margin = solver_guards_info().rail_margin
        report = run_injection_campaign(
            [VoltagePerturbationInjector(amplitude=40 * margin, seed=7)],
            lambda: _write_then_read(_column()),
            expect=lambda value: value == 1,
        )
        (result,) = report.results
        assert result.verdict in ("escaped", "masked")
        if result.verdict == "escaped":
            assert "expectation" in result.detail
