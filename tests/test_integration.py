"""End-to-end integration tests: the paper's story across all layers.

These tests run the complete pipeline — electrical defect injection,
(R_def, U)-plane analysis, partial-fault identification, completion
search, behavioural modelling and march-test qualification — and assert
the paper's headline narrative at each hand-off.
"""

import pytest

from repro import (
    ColumnFaultAnalyzer,
    FFM,
    FloatingNode,
    MARCH_PF_PLUS,
    OpenDefect,
    OpenLocation,
    SweepGrid,
    Topology,
    classify_fp,
    complete_fault,
    detects,
    parse_march,
    parse_sos,
    run_march,
)
from repro.memory.simulator import ElectricalMemory


@pytest.fixture(scope="module")
def open4_analyzer():
    return ColumnFaultAnalyzer(
        OpenLocation.BL_PRECHARGE_CELLS,
        grid=SweepGrid.make(r_min=3e3, r_max=1e7, n_r=8, n_u=6),
    )


class TestPaperStoryEndToEnd:
    """Fig. 1 -> Fig. 3 -> Table 1 -> March test, in one flow."""

    def test_full_pipeline(self, open4_analyzer):
        # 1. The fault analysis finds the partial RDF1 of Fig. 3(a).
        findings = open4_analyzer.survey(
            FloatingNode.BIT_LINE, probes=("1r1",)
        )
        rdf1 = next(f for f in findings if f.ffm is FFM.RDF1)
        assert rdf1.is_partial

        # 2. The completion search derives the paper's completed FP.
        outcome = complete_fault(open4_analyzer, rdf1, max_extra_ops=1)
        assert outcome.describe() == "<1v [w0BL] r1v/0/0>"
        assert classify_fp(outcome.completed_fp) is FFM.RDF1

        # 3. The conventional test of the paper's introduction misses it...
        w1r1 = parse_march("{⇕(w1); ⇕(r1)}", "w1r1")
        assert not detects(w1r1, outcome.completed_fp, Topology(4, 2))

        # 4. ...while March PF+ guarantees detection, behaviourally...
        assert detects(MARCH_PF_PLUS, outcome.completed_fp, Topology(4, 2))

        # 5. ...and electrically, for any floating preset.
        for preset in (0.0, 3.3):
            memory = ElectricalMemory.with_defect(
                defect=OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e6),
                n_rows=3,
                floating={FloatingNode.BIT_LINE: preset},
            )
            assert run_march(MARCH_PF_PLUS, memory, stop_at_first=True).detected
            memory2 = ElectricalMemory.with_defect(
                defect=OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e6),
                n_rows=3,
                floating={FloatingNode.BIT_LINE: preset},
            )
            assert not run_march(w1r1, memory2).detected


class TestBehaviouralElectricalAgreement:
    """The fault machine must mirror what the circuit actually does."""

    def test_rdf1_trigger_sequence_agrees(self, open4_analyzer):
        from repro.core.fault_primitives import parse_fp
        from repro.memory.fault_machine import BehavioralFault
        from repro.memory.simulator import FaultyMemory

        fp = parse_fp("<1v [w0BL] r1v/0/0>")
        topo = Topology(3, 1)
        fault = BehavioralFault.from_fp(fp, 0, topo, node_value=None)
        behavioural = FaultyMemory(topo, fault)
        electrical = ElectricalMemory.with_defect(
            defect=OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e7), n_rows=3
        )
        script = [
            ("w", 0, 1), ("w", 1, 0), ("r", 0, None),  # arm + trigger
            ("r", 0, None),                             # destroyed state
        ]
        for kind, addr, value in script:
            if kind == "w":
                behavioural.write(addr, value)
                electrical.write(addr, value)
            else:
                assert behavioural.read(addr) == electrical.read(addr)

    def test_fault_free_sequences_agree(self):
        electrical = ElectricalMemory.with_defect(n_rows=3)
        from repro.memory.simulator import FaultyMemory

        behavioural = FaultyMemory(Topology(3, 1))
        script = [
            ("w", 0, 1), ("w", 1, 0), ("w", 2, 1),
            ("r", 0, None), ("r", 1, None), ("r", 2, None),
            ("w", 0, 0), ("r", 0, None), ("r", 2, None),
        ]
        for kind, addr, value in script:
            if kind == "w":
                behavioural.write(addr, value)
                electrical.write(addr, value)
            else:
                assert behavioural.read(addr) == electrical.read(addr)


class TestCellOpenStory:
    """The Fig. 4 family end to end."""

    def test_cell_open_completion_and_detection(self):
        analyzer = ColumnFaultAnalyzer(
            OpenLocation.CELL,
            grid=SweepGrid.make(r_min=3e4, r_max=1e6, n_r=8, n_u=6),
        )
        findings = analyzer.survey(FloatingNode.CELL, probes=("0r0",))
        rdf0 = next(f for f in findings if f.ffm is FFM.RDF0)
        assert rdf0.is_partial
        outcome = complete_fault(analyzer, rdf0, max_extra_ops=3)
        assert outcome.possible
        # Victim-targeted completion with dropped initialization.
        assert outcome.completed_fp.sos.inits == ()
        assert detects(MARCH_PF_PLUS, outcome.completed_fp, Topology(4, 2))


class TestWordLineStory:
    """Open 9: partial faults that cannot be completed."""

    def test_not_possible_and_march_escape(self):
        analyzer = ColumnFaultAnalyzer(
            OpenLocation.WORD_LINE,
            grid=SweepGrid.make(r_min=1e7, r_max=1e9, n_r=5, n_u=5),
        )
        findings = [f for f in analyzer.survey(probes=("0", "0r0"))
                    if f.is_partial]
        assert findings
        for finding in findings:
            outcome = complete_fault(analyzer, finding, max_extra_ops=2)
            assert not outcome.possible
        # Whenever the fault manifests (floating WL in the active range),
        # March PF+ still flags the memory.
        memory = ElectricalMemory.with_defect(
            defect=OpenDefect(OpenLocation.WORD_LINE, 1e9),
            n_rows=3,
            floating={FloatingNode.WORD_LINE: 3.3},
        )
        assert run_march(MARCH_PF_PLUS, memory, stop_at_first=True).detected
