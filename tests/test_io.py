"""Round-trip tests for the JSON serialization layer."""

import json

import pytest

from repro.circuit.defects import OpenDefect, OpenLocation
from repro.core.coupling import CouplingFFM
from repro.core.fault_primitives import parse_fp
from repro.core.ffm import FFM
from repro.core.regions import FPRegionMap
from repro.io import (
    dump_fp,
    dump_march,
    dump_region_map,
    dump_signature_database,
    dumps_march,
    load_fp,
    load_march,
    load_region_map,
    load_signature_database,
    loads_march,
)
from repro.march.library import ALL_TESTS, IFA_13, MARCH_PF_PLUS


class TestMarchRoundTrip:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    def test_all_library_tests(self, test):
        recovered = load_march(dump_march(test))
        assert recovered.name == test.name
        assert recovered.elements == test.elements

    def test_string_roundtrip(self):
        assert loads_march(dumps_march(IFA_13)).elements == IFA_13.elements

    def test_json_serializable(self):
        json.dumps(dump_march(MARCH_PF_PLUS))

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            load_fp(dump_march(MARCH_PF_PLUS))

    def test_format_guard(self):
        data = dump_march(MARCH_PF_PLUS)
        data["format"] = "other"
        with pytest.raises(ValueError):
            load_march(data)


class TestFaultPrimitiveRoundTrip:
    @pytest.mark.parametrize("text", [
        "<1r1/0/0>", "<0w1/0/->", "<1v [w0BL] r1v/0/0>",
        "<[w1 w0] r0/1/1>", "<0/1/->",
    ])
    def test_roundtrip(self, text):
        fp = parse_fp(text)
        assert load_fp(dump_fp(fp)) == fp


class TestRegionMapRoundTrip:
    def test_mixed_labels(self):
        region = FPRegionMap(
            (1e3, 1e4),
            (0.0, 1.0),
            (
                (FFM.RDF1, None),
                (CouplingFFM.CFST_01, parse_fp("<1r1/0/0>")),
            ),
        )
        recovered = load_region_map(dump_region_map(region))
        assert recovered == region

    def test_string_labels(self):
        region = FPRegionMap((1.0,), (0.0,), (("weird",),))
        assert load_region_map(dump_region_map(region)) == region

    def test_json_serializable(self):
        region = FPRegionMap((1.0,), (0.0,), ((FFM.SF0,),))
        json.dumps(dump_region_map(region))


class TestSignatureDatabaseRoundTrip:
    def test_roundtrip_preserves_diagnosis(self):
        from repro.core.diagnosis import SignatureDatabase

        database = SignatureDatabase(
            points_per_decade=1,
            locations=(OpenLocation.BL_PRECHARGE_CELLS, OpenLocation.CELL),
        )
        data = json.loads(json.dumps(dump_signature_database(database)))
        recovered = load_signature_database(data)
        assert recovered.size == database.size
        defect = OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e6)
        original = database.diagnose_defect(defect)
        # The loaded DB diagnoses from a freshly collected signature.
        loaded = recovered.diagnose(database.signature_of(defect))
        assert [c.location for c in loaded.candidates] == [
            c.location for c in original.candidates
        ]
