"""Round-trip tests for the JSON serialization layer."""

import json
import os

import pytest

from repro.circuit.defects import OpenDefect, OpenLocation
from repro.core.coupling import CouplingFFM
from repro.core.fault_primitives import parse_fp
from repro.core.ffm import FFM
from repro.core.regions import FPRegionMap
from repro.io import (
    CHECKPOINT_CODECS,
    CheckpointStore,
    dump_completion,
    dump_finding,
    dump_fp,
    dump_march,
    dump_region_map,
    dump_signature_database,
    dump_survey_unit,
    dumps_march,
    load_completion,
    load_finding,
    load_fp,
    load_march,
    load_region_map,
    load_signature_database,
    load_survey_unit,
    loads_march,
)
from repro.march.library import ALL_TESTS, IFA_13, MARCH_PF_PLUS


class TestMarchRoundTrip:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    def test_all_library_tests(self, test):
        recovered = load_march(dump_march(test))
        assert recovered.name == test.name
        assert recovered.elements == test.elements

    def test_string_roundtrip(self):
        assert loads_march(dumps_march(IFA_13)).elements == IFA_13.elements

    def test_json_serializable(self):
        json.dumps(dump_march(MARCH_PF_PLUS))

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            load_fp(dump_march(MARCH_PF_PLUS))

    def test_format_guard(self):
        data = dump_march(MARCH_PF_PLUS)
        data["format"] = "other"
        with pytest.raises(ValueError):
            load_march(data)


class TestFaultPrimitiveRoundTrip:
    @pytest.mark.parametrize("text", [
        "<1r1/0/0>", "<0w1/0/->", "<1v [w0BL] r1v/0/0>",
        "<[w1 w0] r0/1/1>", "<0/1/->",
    ])
    def test_roundtrip(self, text):
        fp = parse_fp(text)
        assert load_fp(dump_fp(fp)) == fp


class TestRegionMapRoundTrip:
    def test_mixed_labels(self):
        region = FPRegionMap(
            (1e3, 1e4),
            (0.0, 1.0),
            (
                (FFM.RDF1, None),
                (CouplingFFM.CFST_01, parse_fp("<1r1/0/0>")),
            ),
        )
        recovered = load_region_map(dump_region_map(region))
        assert recovered == region

    def test_string_labels(self):
        region = FPRegionMap((1.0,), (0.0,), (("weird",),))
        assert load_region_map(dump_region_map(region)) == region

    def test_json_serializable(self):
        region = FPRegionMap((1.0,), (0.0,), ((FFM.SF0,),))
        json.dumps(dump_region_map(region))


class TestSignatureDatabaseRoundTrip:
    def test_roundtrip_preserves_diagnosis(self):
        from repro.core.diagnosis import SignatureDatabase

        database = SignatureDatabase(
            points_per_decade=1,
            locations=(OpenLocation.BL_PRECHARGE_CELLS, OpenLocation.CELL),
        )
        data = json.loads(json.dumps(dump_signature_database(database)))
        recovered = load_signature_database(data)
        assert recovered.size == database.size
        defect = OpenDefect(OpenLocation.BL_PRECHARGE_CELLS, 1e6)
        original = database.diagnose_defect(defect)
        # The loaded DB diagnoses from a freshly collected signature.
        loaded = recovered.diagnose(database.signature_of(defect))
        assert [c.location for c in loaded.candidates] == [
            c.location for c in original.candidates
        ]


class TestCheckpointCodecs:
    def _finding(self):
        from repro.circuit.defects import FloatingNode
        from repro.core.analysis import PartialFaultFinding
        from repro.core.fault_primitives import parse_sos

        region = FPRegionMap(
            (1e3, 1e4),
            (0.0, 1.0),
            ((FFM.RDF0, None), (None, FFM.RDF0)),
        )
        return PartialFaultFinding(
            OpenLocation.CELL,
            (FloatingNode.CELL,),
            parse_sos("0r0"),
            FFM.RDF0,
            region,
        )

    def test_finding_roundtrip(self):
        finding = self._finding()
        recovered = load_finding(json.loads(json.dumps(dump_finding(finding))))
        assert recovered.location is finding.location
        assert recovered.floating == finding.floating
        assert recovered.probe_sos == finding.probe_sos
        assert recovered.ffm is finding.ffm
        assert recovered.region == finding.region

    def _quarantined_point(self):
        from repro.circuit.defects import FloatingNode
        from repro.core.analysis import QuarantinedPoint

        return QuarantinedPoint(
            location=OpenLocation.CELL,
            floating=(FloatingNode.CELL,),
            sos="0r0",
            r_def=3e4,
            u=1.65,
            guard="nan",
            detail="solver guard 'nan' tripped: non-finite node voltage",
        )

    def test_survey_unit_roundtrip(self):
        point = self._quarantined_point()
        unit_result = ([self._finding()], (3, 1), (10, 2), [point])
        data = json.loads(json.dumps(dump_survey_unit(unit_result)))
        findings, observation, propagator, quarantined = load_survey_unit(data)
        assert len(findings) == 1 and findings[0].ffm is FFM.RDF0
        assert observation == (3, 1) and propagator == (10, 2)
        assert quarantined == [point]

    def test_survey_unit_accepts_pre_guard_3_tuple(self):
        # Checkpoints written before the guard-rail release have no
        # quarantine list; both dumping and loading them must still work.
        unit_result = ([self._finding()], (3, 1), (10, 2))
        data = json.loads(json.dumps(dump_survey_unit(unit_result)))
        del data["quarantined"]  # simulate an old stored line
        findings, observation, propagator, quarantined = load_survey_unit(data)
        assert len(findings) == 1
        assert observation == (3, 1) and propagator == (10, 2)
        assert quarantined == []

    def test_quarantined_point_roundtrip(self):
        from repro.io import dump_quarantined_point, load_quarantined_point

        point = self._quarantined_point()
        data = json.loads(json.dumps(dump_quarantined_point(point)))
        assert load_quarantined_point(data) == point

    def test_quarantined_label_roundtrip(self):
        from repro.core.regions import QUARANTINED

        region = FPRegionMap(
            (1e3, 1e4),
            (0.0, 1.0),
            ((FFM.RDF0, QUARANTINED), (None, FFM.RDF0)),
        )
        data = json.loads(json.dumps(dump_region_map(region)))
        recovered = load_region_map(data)
        assert recovered.labels[0][1] is QUARANTINED
        assert recovered == region

    def test_completion_roundtrip(self):
        fp = parse_fp("<[w1 w0] r0/1/1>")
        assert load_completion(dump_completion(fp)) == fp
        assert load_completion(dump_completion(None)) is None

    def test_codec_table_is_consistent(self):
        for name, (dump, load) in CHECKPOINT_CODECS.items():
            assert callable(dump) and callable(load), name
        assert {"json", "region-map", "survey-unit", "completion"} <= set(
            CHECKPOINT_CODECS
        )


class TestCheckpointStore:
    def test_record_then_load(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with CheckpointStore(path) as store:
            store.record("alpha", True)
            store.record("beta", [1, 2.5, "x"])
        assert CheckpointStore(path).load() == {
            "alpha": True, "beta": [1, 2.5, "x"],
        }

    def test_region_map_codec(self, tmp_path):
        region = FPRegionMap((1.0,), (0.0,), ((FFM.SF0,),))
        path = str(tmp_path / "store.jsonl")
        with CheckpointStore(path) as store:
            store.record("map", region, codec="region-map")
        assert CheckpointStore(path).load() == {"map": region}

    def test_duplicate_keys_last_wins(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with CheckpointStore(path) as store:
            store.record("k", 1)
            store.record("k", 2)
        assert CheckpointStore(path).load() == {"k": 2}

    def test_missing_file_is_empty(self, tmp_path):
        assert CheckpointStore(str(tmp_path / "nope.jsonl")).load() == {}

    def test_skips_torn_foreign_and_unknown_lines(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with CheckpointStore(path) as store:
            store.record("good", 7)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"format": "other", "kind": "checkpoint-unit", '
                     '"key": "x", "codec": "json", "payload": 1}\n')
            fh.write('{"format": "repro-v1", "kind": "checkpoint-unit", '
                     '"key": "y", "codec": "martian", "payload": 1}\n')
            fh.write('{"format": "repro-v1", "kind": "checkpo')  # torn tail
        assert CheckpointStore(path).load() == {"good": 7}

    def test_unknown_codec_on_record_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "store.jsonl"))
        with pytest.raises(KeyError):
            store.record("k", 1, codec="martian")


class TestCheckpointConcurrentWriters:
    """O_APPEND + single-write() records interleave whole, never torn."""

    def test_concurrent_writers_interleave_whole_records(self, tmp_path):
        import threading

        path = str(tmp_path / "shared.jsonl")
        writers, per_writer = 8, 50
        barrier = threading.Barrier(writers)
        # A bulky payload makes a torn interleave (one record landing
        # inside another) far more likely if the append were not atomic.
        filler = "x" * 512

        def append(writer_index):
            with CheckpointStore(path) as store:
                barrier.wait()
                for unit in range(per_writer):
                    store.record(
                        f"w{writer_index}-u{unit}",
                        {"writer": writer_index, "unit": unit,
                         "filler": filler},
                    )

        threads = [
            threading.Thread(target=append, args=(index,))
            for index in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == writers * per_writer
        for line in lines:
            json.loads(line)  # every line is one whole record
        loaded = CheckpointStore(path).load()
        assert len(loaded) == writers * per_writer
        for writer_index in range(writers):
            for unit in range(per_writer):
                assert loaded[f"w{writer_index}-u{unit}"]["unit"] == unit

    def test_crash_torn_tail_loses_only_the_last_record(self, tmp_path):
        path = str(tmp_path / "crashed.jsonl")
        with CheckpointStore(path) as store:
            for unit in range(5):
                store.record(f"u{unit}", unit)
        # Simulate a hard kill mid-write: truncate into the last record.
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.truncate(size - 7)
        loaded = CheckpointStore(path).load()
        assert loaded == {f"u{unit}": unit for unit in range(4)}

    def test_record_after_close_reopens_the_descriptor(self, tmp_path):
        path = str(tmp_path / "reopen.jsonl")
        store = CheckpointStore(path)
        store.record("a", 1)
        store.close()
        store.record("b", 2)  # appends, never truncates
        store.close()
        assert CheckpointStore(path).load() == {"a": 1, "b": 2}

    def test_partial_write_raises_without_a_continuation_write(
        self, tmp_path, monkeypatch
    ):
        # A follow-up write after a short one would not be atomic with
        # it and could interleave with a concurrent writer — record()
        # must raise and leave only the torn tail load() already skips.
        path = str(tmp_path / "short.jsonl")
        store = CheckpointStore(path)
        store.record("ok", 1)
        real_write = os.write
        writes = []

        def short_write(fd, data):
            writes.append(bytes(data))
            return real_write(fd, data[: len(data) // 2])

        monkeypatch.setattr(os, "write", short_write)
        with pytest.raises(OSError, match="short checkpoint append"):
            store.record("torn", 2)
        monkeypatch.undo()
        assert len(writes) == 1  # no second write for the remainder
        store.close()
        assert CheckpointStore(path).load() == {"ok": 1}
