"""The public API surface: everything advertised must resolve and work."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__


def test_quickstart_docstring_flow():
    """The flow shown in the package docstring must actually run."""
    from repro import (
        FFM,
        ColumnFaultAnalyzer,
        FloatingNode,
        MARCH_PF_PLUS,
        OpenLocation,
        SweepGrid,
        Topology,
        complete_fault,
        detects,
    )

    analyzer = ColumnFaultAnalyzer(
        OpenLocation.BL_PRECHARGE_CELLS,
        grid=SweepGrid.make(r_min=1e4, r_max=1e7, n_r=6, n_u=5),
    )
    findings = analyzer.survey(FloatingNode.BIT_LINE, probes=("1r1",))
    partial = next(f for f in findings if f.is_partial and f.ffm is FFM.RDF1)
    outcome = complete_fault(analyzer, partial, max_extra_ops=1)
    assert outcome.describe() == "<1v [w0BL] r1v/0/0>"
    assert detects(MARCH_PF_PLUS, outcome.completed_fp, Topology(4, 2))


def test_library_lookup_is_complete():
    from repro import ALL_TESTS, get_test

    for test in ALL_TESTS:
        assert get_test(test.name) is test
